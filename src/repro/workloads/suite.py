"""The paper's ten workloads (plus the kernel), synthesised (§6.2, Table 1).

Each workload is calibrated on two axes:

- **Footprint** — the mapped-page count implied by Table 1's hashed-page-
  table memory column (hashed PTEs are 24 bytes, so coral's 119 KB means
  ≈ 5077 mapped pages), and
- **Shape** — the qualitative address-space structure and reference
  pattern the paper describes: coral/ML/kernel dense, gcc/compress sparse
  and multiprogrammed, the scientific codes dominated by large arrays
  swept or strided.

Absolute execution times and miss counts are *not* reproduced (our traces
are scaled down ~100×); the quantities the figures consume — density,
burstiness, per-PTE-format miss mix, relative miss rates — are.

Multiprogrammed workloads place each constituent process in a disjoint
slice of the 64-bit VA so one trace (with context-switch flush points) can
drive a shared TLB; page-table sizes are summed over per-process tables,
as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.addr.layout import AddressLayout, DEFAULT_LAYOUT, MB
from repro.addr.space import AddressSpace
from repro.errors import ConfigurationError
from repro.os.physmem import ReservationAllocator
from repro.workloads.synthetic import (
    RegionSpec,
    build_address_space,
    phased_trace,
    pointer_chase_trace,
    stride_trace,
    sweep_trace,
    working_set_trace,
)
from repro.workloads.trace import Trace

#: VA slice (in pages) given to each process of a multiprogrammed workload.
PROCESS_VA_STRIDE = 1 << 24  # 64 GB of virtual space per process

#: Default reference-trace length per workload.
DEFAULT_TRACE_LENGTH = 300_000


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one paper workload.

    ``table1`` records the paper's measured characteristics for
    EXPERIMENTS.md comparisons: (total seconds, user seconds, user TLB
    misses in thousands, % user time in miss handling, hashed page table
    KB).
    """

    name: str
    description: str
    processes: int
    density: str  # "dense" | "bursty" | "sparse" (reporting only)
    table1: Tuple[float, float, int, int, int]
    region_builder: Callable[[int], List[RegionSpec]]
    trace_builder: Callable[["Workload", int, int], Trace]


@dataclass
class Workload:
    """A realised workload: per-process address spaces plus a trace."""

    spec: WorkloadSpec
    layout: AddressLayout
    spaces: List[AddressSpace]
    trace: Optional[Trace] = None

    @property
    def name(self) -> str:
        """Workload name (Table 1 row label)."""
        return self.spec.name

    def total_mapped_pages(self) -> int:
        """Mapped pages summed over constituent processes."""
        return sum(len(space) for space in self.spaces)

    def union_space(self) -> AddressSpace:
        """All processes' mappings in one space (VAs are disjoint).

        Used for access-time simulation against a single shared page
        table; size experiments use per-process tables instead.
        """
        union = AddressSpace(self.layout, f"{self.name}-union")
        for space in self.spaces:
            for vpn, mapping in space.items():
                union.map(vpn, mapping.ppn, mapping.attrs)
        return union


def _offset(regions: Sequence[RegionSpec], pages: int) -> List[RegionSpec]:
    return [
        RegionSpec(r.name, r.base_vpn + pages, r.npages, r.fill, r.clustered_fill)
        for r in regions
    ]


# ---------------------------------------------------------------------------
# Region recipes.  Base VPNs imitate a SPARC/Solaris-style layout: text low,
# heap above it, mmaps in the middle, stack high.
# ---------------------------------------------------------------------------
_TEXT = 0x00100
_HEAP = 0x08000
_MMAP = 0x40000
_STACK = 0xFF000


def _coral_regions(seed: int) -> List[RegionSpec]:
    # Deductive DB running a nested-loop join: two big, dense relations
    # plus index structures.  Dense address space (Fig 9 discussion).
    return [
        RegionSpec("text", _TEXT, 72),
        RegionSpec("data", _TEXT + 96, 96),
        RegionSpec("relation-outer", _HEAP, 2288),
        RegionSpec("relation-inner", _HEAP + 2560, 2288),
        RegionSpec("index", _MMAP, 320, fill=0.95),
        RegionSpec("stack", _STACK, 16),
    ]


def _nasa7_regions(seed: int) -> List[RegionSpec]:
    # Seven small numeric kernels over a couple of dense matrices.
    return [
        RegionSpec("text", _TEXT, 48),
        RegionSpec("matrix-a", _HEAP, 416),
        RegionSpec("matrix-b", _HEAP + 512, 416),
        RegionSpec("stack", _STACK, 16),
    ]


def _compress_proc_regions(seed: int) -> List[RegionSpec]:
    # One compress process: small text, dense hash tables, an I/O buffer,
    # plus a few scattered tiny mmaps (sparse overall).
    return [
        RegionSpec("text", _TEXT, 24),
        RegionSpec("tables", _HEAP, 96),
        RegionSpec("iobuf", _MMAP, 40, fill=0.8),
        RegionSpec("libs", _MMAP + 4096, 8, fill=0.75, clustered_fill=False),
        RegionSpec("libs2", _MMAP + 12288, 8, fill=0.75, clustered_fill=False),
        RegionSpec("stack", _STACK, 8),
    ]


def _fftpde_regions(seed: int) -> List[RegionSpec]:
    # 64x64x64 complex grid: three big dense arrays.
    return [
        RegionSpec("text", _TEXT, 24),
        RegionSpec("grid-a", _HEAP, 1240),
        RegionSpec("grid-b", _HEAP + 1536, 1240),
        RegionSpec("grid-c", _HEAP + 3072, 1240),
        RegionSpec("stack", _STACK, 12),
    ]


def _wave5_regions(seed: int) -> List[RegionSpec]:
    return [
        RegionSpec("text", _TEXT, 96),
        RegionSpec("particles", _HEAP, 1792),
        RegionSpec("fields", _HEAP + 2048, 1696),
        RegionSpec("stack", _STACK, 12),
    ]


def _mp3d_regions(seed: int) -> List[RegionSpec]:
    return [
        RegionSpec("text", _TEXT, 32),
        RegionSpec("particles", _HEAP, 1104),
        RegionSpec("cells", _HEAP + 1280, 88),
        RegionSpec("stack", _STACK, 12),
    ]


def _spice_regions(seed: int) -> List[RegionSpec]:
    # Circuit simulation: moderately bursty sparse-matrix storage.
    return [
        RegionSpec("text", _TEXT, 208),
        RegionSpec("matrix", _HEAP, 760, fill=0.82),
        RegionSpec("models", _MMAP, 128, fill=0.75),
        RegionSpec("stack", _STACK, 12),
    ]


def _pthor_regions(seed: int) -> List[RegionSpec]:
    # Logic simulator: many medium element arrays, bursty.
    regions = [RegionSpec("text", _TEXT, 88)]
    base = _HEAP
    for i in range(21):
        regions.append(
            RegionSpec(f"elements-{i}", base, 192, fill=0.95)
        )
        base += 224
    regions.append(RegionSpec("stack", _STACK, 12))
    return regions


def _ml_regions(seed: int) -> List[RegionSpec]:
    # SML/NJ GC stress: two large semispaces plus runtime.
    return [
        RegionSpec("text", _TEXT, 152),
        RegionSpec("from-space", _HEAP, 3840),
        RegionSpec("to-space", _HEAP + 4096, 3840),
        RegionSpec("runtime", _MMAP, 448, fill=0.9),
        RegionSpec("stack", _STACK, 16),
    ]


def _gcc_proc_regions(process: int) -> List[RegionSpec]:
    if process == 0:
        # cc1: the big process; moderately bursty heap.
        return [
            RegionSpec("text", _TEXT, 304),
            RegionSpec("heap", _HEAP, 760, fill=0.88),
            RegionSpec("obstacks", _MMAP, 272, fill=0.85),
            RegionSpec("stack", _STACK, 16),
        ]
    # make / sh / script: small, sparse helpers with scattered mmaps.
    regions = [
        RegionSpec("text", _TEXT, 24, fill=0.8),
        RegionSpec("heap", _HEAP, 40, fill=0.55, clustered_fill=False),
        RegionSpec("stack", _STACK, 6),
    ]
    base = _MMAP + process * 512
    for i in range(4):
        regions.append(
            RegionSpec(
                f"lib-{i}", base + i * 4096, 6, fill=0.5, clustered_fill=False
            )
        )
    return regions


def _kernel_regions(seed: int) -> List[RegionSpec]:
    # Kernel address space: large dense text/data plus many vmalloc-style
    # medium regions.  Dense per the Fig 9 discussion.
    regions = [
        RegionSpec("ktext", _TEXT, 512),
        RegionSpec("kdata", _HEAP, 3264),
    ]
    base = _MMAP
    for i in range(120):
        regions.append(RegionSpec(f"kmap-{i}", base, 36, fill=0.97))
        base += 64
    return regions


# ---------------------------------------------------------------------------
# Trace recipes
# ---------------------------------------------------------------------------
def _sweep_style(workload: Workload, length: int, seed: int) -> Trace:
    return sweep_trace(workload.spaces[0], length, name=workload.name)


def _stride_style(stride: int, repeat: int = 1):
    def build(workload: Workload, length: int, seed: int) -> Trace:
        return stride_trace(
            workload.spaces[0], length, stride_pages=stride,
            name=workload.name, repeat=repeat,
        )

    return build


def _working_set_style(ws: int, churn: float = 0.002, locality: float = 1.2):
    def build(workload: Workload, length: int, seed: int) -> Trace:
        return working_set_trace(
            workload.spaces[0], length, working_set_pages=ws, churn=churn,
            locality=locality, seed=seed, name=workload.name,
        )

    return build


def _mp3d_style(workload: Workload, length: int, seed: int) -> Trace:
    # Random particle access, ~10 field references per particle page.
    return pointer_chase_trace(
        workload.spaces[0], length, hot_fraction=0.9, seed=seed,
        name=workload.name, repeat=10,
    )


def _ml_style(workload: Workload, length: int, seed: int) -> Trace:
    # Mutator working-set phases interleaved with full-heap GC sweeps;
    # the collector touches every object on a page (~32 refs/page), the
    # mutator allocates within a hot nursery.
    space = workload.spaces[0]
    phase_len = length // 4
    mutator = working_set_trace(
        space, phase_len, working_set_pages=90, churn=0.002,
        locality=1.4, seed=seed, name="mutator",
    )
    collector = sweep_trace(space, phase_len, name="gc", repeat=48)
    mutator2 = working_set_trace(
        space, phase_len, working_set_pages=90, churn=0.002,
        locality=1.4, seed=seed + 1, name="mutator2",
    )
    collector2 = sweep_trace(space, length - 3 * phase_len, name="gc2", repeat=48)
    return phased_trace(
        [mutator, collector, mutator2, collector2], name=workload.name
    )


def _coral_style(workload: Workload, length: int, seed: int) -> Trace:
    # Nested-loop join: repeated full sweeps of the inner relation with a
    # slow walk of the outer — sweep-dominated with very poor TLB reuse.
    space = workload.spaces[0]
    inner = sweep_trace(
        space, (3 * length) // 4, name="inner", segment_names=["relation-inner"]
    )
    outer = working_set_trace(
        space, length - len(inner), working_set_pages=900, churn=0.001,
        seed=seed, name="outer",
    )
    mixed = Trace.interleave([inner, outer], quantum=2048, name=workload.name)
    # Single process: the phase interleaving must not flush the TLB.
    return Trace(mixed.vpns, name=workload.name,
                 subblock_factor=mixed.subblock_factor)


def _multiproc_style(per_proc_style, quantum: int = 25_000):
    def build(workload: Workload, length: int, seed: int) -> Trace:
        per = max(1, length // len(workload.spaces))
        traces = []
        for i, space in enumerate(workload.spaces):
            single = Workload(workload.spec, workload.layout, [space])
            traces.append(per_proc_style(single, per, seed + i))
        return Trace.interleave(traces, quantum=quantum, name=workload.name)

    return build


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------
def _spec(
    name: str,
    description: str,
    density: str,
    table1: Tuple[float, float, int, int, int],
    region_builder: Callable[[int], List[RegionSpec]],
    trace_builder,
    processes: int = 1,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, description=description, processes=processes,
        density=density, table1=table1, region_builder=region_builder,
        trace_builder=trace_builder,
    )


PAPER_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "coral", "deductive database, nested loop join", "dense",
            (177, 172, 85_974, 50, 119), _coral_regions, _coral_style,
        ),
        _spec(
            "nasa7", "NASA numeric kernels (SPEC92)", "dense",
            (387, 385, 152_357, 40, 21), _nasa7_regions, _stride_style(7, repeat=2),
        ),
        _spec(
            "compress", "SPEC92 compress, two processes", "sparse",
            (104, 82, 21_347, 26, 8), _compress_proc_regions,
            _multiproc_style(_working_set_style(290, churn=0.01, locality=0.8)),
            processes=2,
        ),
        _spec(
            "fftpde", "NAS 3-D FFT PDE, 64^3 grid", "dense",
            (55, 53, 11_280, 21, 88), _fftpde_regions, _stride_style(16, repeat=5),
        ),
        _spec(
            "wave5", "SPEC92 plasma simulation", "dense",
            (110, 107, 14_511, 14, 86), _wave5_regions, _stride_style(5, repeat=8),
        ),
        _spec(
            "mp3d", "SPLASH rarefied-flow simulation", "dense",
            (36, 36, 4_050, 11, 29), _mp3d_regions, _mp3d_style,
        ),
        _spec(
            "spice", "SPEC92 circuit simulator", "bursty",
            (620, 617, 41_922, 7, 22), _spice_regions,
            _working_set_style(150, churn=0.003, locality=1.5),
        ),
        _spec(
            "pthor", "SPLASH logic simulator", "bursty",
            (48, 35, 2_580, 7, 92), _pthor_regions,
            _working_set_style(260, churn=0.004, locality=1.5),
        ),
        _spec(
            "ML", "SML/NJ garbage-collector stress", "dense",
            (950, 919, 38_423, 4, 194), _ml_regions, _ml_style,
        ),
        _spec(
            "gcc", "SPEC92 gcc with make/sh/script helpers", "sparse",
            (159, 133, 2_440, 2, 34), _gcc_proc_regions,
            _multiproc_style(_working_set_style(150, churn=0.004, locality=1.5)),
            processes=5,
        ),
        _spec(
            "kernel", "kernel address space (size snapshot only)", "dense",
            (0, 0, 0, 0, 186), _kernel_regions, None,
        ),
    ]
}


def load_workload(
    name: str,
    layout: AddressLayout = DEFAULT_LAYOUT,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 1234,
    with_trace: bool = True,
    footprint_mb: Optional[float] = None,
) -> Workload:
    """Build one calibrated workload: address space(s) and trace.

    ``kernel`` has no trace (it only appears in the size figures); pass
    ``with_trace=False`` to skip trace generation for any workload.

    ``name`` may be a paper workload (Table 1) or a modern production
    model from :mod:`repro.workloads.modern`; ``footprint_mb`` selects
    the footprint of a modern family member (the paper workloads are
    pinned to their Table 1 footprints, so it is rejected for them).
    """
    spec = PAPER_WORKLOADS.get(name)
    if spec is not None and footprint_mb is not None:
        raise ConfigurationError(
            f"workload {name!r} is calibrated to its Table 1 footprint; "
            "footprint_mb applies only to modern workloads"
        )
    if spec is None:
        from repro.workloads.modern import MODERN_WORKLOADS

        family = MODERN_WORKLOADS.get(name)
        if family is None:
            raise ConfigurationError(
                f"unknown workload {name!r}; known: "
                f"{sorted(PAPER_WORKLOADS) + sorted(MODERN_WORKLOADS)}"
            )
        spec = family.spec_for(footprint_mb)
    spaces: List[AddressSpace] = []
    for process in range(spec.processes):
        if spec.processes > 1:
            regions = spec.region_builder(process)
            regions = _offset(regions, process * PROCESS_VA_STRIDE)
        else:
            regions = spec.region_builder(seed)
        demand = sum(max(1, int(round(r.npages * r.fill))) for r in regions)
        s = layout.subblock_factor
        allocator = ReservationAllocator(
            max(s, ((demand * 2) // s + 2) * s), layout
        )
        spaces.append(
            build_address_space(
                regions, layout, allocator, seed=seed + process * 7,
                name=f"{name}-p{process}",
            )
        )
    workload = Workload(spec=spec, layout=layout, spaces=spaces)
    if with_trace and spec.trace_builder is not None:
        workload.trace = spec.trace_builder(workload, trace_length, seed)
    return workload


def load_suite(
    layout: AddressLayout = DEFAULT_LAYOUT,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    names: Optional[Sequence[str]] = None,
    with_traces: bool = True,
) -> Dict[str, Workload]:
    """Build every (or the named) paper workload."""
    selected = names or list(PAPER_WORKLOADS)
    return {
        name: load_workload(
            name, layout, trace_length, with_trace=with_traces
        )
        for name in selected
    }
