"""Production workload models: KV store, web server, compiler, ML training.

The paper's ten workloads (:mod:`repro.workloads.suite`) model 1995
address spaces; this module adds the four server-class shapes ROADMAP
item 2 calls for, calibrated against the address-space behaviours the
modern harnesses in SNIPPETS.md / ``/root/related`` exercise (redis-like
KV and ML-training scenarios from ``ddps-lab/criu-test-workload``,
memcached/nginx profiles from the Continuous-Memory-Profiler runners)
and the footprint regimes of the large-memory TLB studies in PAPERS.md
("TLB and Pagewalk Performance … with Die-Stacked DRAM Cache",
"Mitosis").

Unlike the paper workloads — pinned to Table 1's measured footprints —
each modern model is **footprint-parameterized**: one ``footprint_mb``
knob scales the mapped memory from megabytes to terabytes while the
*shape* (region structure, fill, reference pattern) stays fixed.  A
:class:`ModernWorkloadSpec` is therefore a family; ``spec_for`` realises
one member as an ordinary
:class:`~repro.workloads.suite.WorkloadSpec`, with the hashed-table-KB
slot of ``table1`` computed from the planned page count (24 B/PTE, as
the suite does in reverse) so the existing calibration audit applies
unchanged.

The four shapes:

``kv-store``
    Slab-allocated value arenas (one region per size class, nearly full
    with eviction holes) plus a dense hash index; Zipf-weighted key
    traffic with high address reuse, interleaved with background
    eviction scans.  Dense.
``web-server``
    Dense shared-library text plus many short-lived, scattered
    per-connection mmap regions; high-churn working-set traffic (each
    connection touches a few pages and dies) mixed with accept-loop
    sweeps of the library text.  Sparse — the modern heir to gcc's
    scattered helpers.
``compiler``
    A monotonically grown heap with leak holes (fill < 1, clustered)
    and a few AST/obstack arenas; front-end/working-set phases
    alternate with generation sweeps over the whole heap.  Bursty.
``ml-training``
    Huge dense tensor arenas (parameters, gradients, optimizer state)
    plus an activation arena with allocator churn; epoch-strided sweeps
    alternate with hot activation reuse.  Dense — the TB-scale end of
    the sweep.

Virtual layout imitates a modern 64-bit Linux process (text low, heap
above, a wide mmap area, stack high) rather than the suite's
SPARC/Solaris bases, so the forward-mapped table sees realistic 64-bit
scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.addr.layout import AddressLayout, DEFAULT_LAYOUT
from repro.errors import ConfigurationError
from repro.workloads.suite import (
    DEFAULT_TRACE_LENGTH,
    Workload,
    WorkloadSpec,
)
from repro.workloads.synthetic import (
    RegionSpec,
    phased_trace,
    pointer_chase_trace,
    stride_trace,
    sweep_trace,
    working_set_trace,
)
from repro.workloads.trace import Trace

#: 4 KB pages per MB of mapped memory (the suite-wide page size; the
#: same constant underlies the 24 B/PTE Table 1 arithmetic).
PAGES_PER_MB = 256

#: Hashed PTE size used to translate planned pages into the ``table1``
#: KB slot the calibration audit reads (matches the suite's inverse).
_HASHED_PTE_BYTES = 24

# ---------------------------------------------------------------------------
# Modern Linux-style virtual layout (VPNs): text at 4 MB, heap at 4 GB,
# a wide mmap area at 4 TB, stack near the top of the lower canonical
# half.  The spans are wide enough that a terabyte-scale footprint never
# collides with a neighbouring area.
# ---------------------------------------------------------------------------
M_TEXT = 0x400
M_HEAP = 0x100000
M_MMAP = 0x40000000
M_STACK = 0x7F0000000


def _planned_pages(regions: Sequence[RegionSpec]) -> int:
    """Mapped pages these regions will realise (exact post-PR fill)."""
    return sum(max(1, int(round(r.npages * r.fill))) for r in regions)


def _split(total: int, fractions: Sequence[float]) -> List[int]:
    """Partition ``total`` by ``fractions`` with no rounding loss."""
    out: List[int] = []
    acc = 0.0
    run = 0
    for fraction in fractions:
        acc += fraction * total
        boundary = int(round(acc))
        out.append(max(0, boundary - run))
        run = boundary
    out[-1] += total - sum(out)
    return out


# ---------------------------------------------------------------------------
# Region plans: page budget -> regions.  Deterministic (no RNG) so the
# planned footprint — and hence the calibration target — is exact.
# ---------------------------------------------------------------------------
def _kv_store_plan(budget: int) -> List[RegionSpec]:
    text, index, stack, slabs = _split(budget, (0.02, 0.08, 0.005, 0.895))
    regions = [
        RegionSpec("text", M_TEXT, max(8, text)),
        RegionSpec("index", M_HEAP, max(16, index)),
    ]
    # Slab size classes, each a contiguous arena mmap'd separately;
    # eviction leaves holes (fill < 1, clustered — freed slabs come
    # back as runs, not salt-and-pepper).
    classes = 12
    base = M_MMAP
    for i, mapped in enumerate(_split(slabs, [1.0 / classes] * classes)):
        npages = max(8, int(round(max(1, mapped) / 0.96)))
        regions.append(
            RegionSpec(f"slab-{i}", base, npages, fill=0.96)
        )
        base += npages + 64
    regions.append(RegionSpec("stack", M_STACK, max(8, stack)))
    return regions


def _web_server_plan(budget: int) -> List[RegionSpec]:
    libs, heap, conns, stack = _split(budget, (0.12, 0.08, 0.795, 0.005))
    regions = [
        RegionSpec("libs", M_TEXT, max(16, libs)),
        RegionSpec("heap", M_HEAP, max(16, int(round(max(1, heap) / 0.5))),
                   fill=0.5, clustered_fill=False),
    ]
    # Short-lived per-connection mmaps: many small contiguous buffers
    # scattered across the mmap area with wide gaps.  The *regions* are
    # nearly empty at 512-page granularity even though each buffer is
    # dense — the scatter that blows linear tables up in Figure 9.
    nconn = max(8, min(32_768, conns // 24))
    base = M_MMAP
    for i, mapped in enumerate(_split(conns, [1.0 / nconn] * nconn)):
        npages = max(8, int(round(max(1, mapped) / 0.9)))
        regions.append(RegionSpec(f"conn-{i}", base, npages, fill=0.9))
        base += npages + 1024
    regions.append(RegionSpec("stack", M_STACK, max(8, stack)))
    return regions


def _compiler_plan(budget: int) -> List[RegionSpec]:
    text, heap, arenas, stack = _split(budget, (0.06, 0.64, 0.28, 0.02))
    regions = [
        RegionSpec("text", M_TEXT, max(16, text)),
        # The monotonically grown heap: freed-but-leaked allocations
        # leave clustered holes behind the allocation frontier.
        RegionSpec("heap", M_HEAP, max(32, int(round(max(1, heap) / 0.78))),
                   fill=0.78),
    ]
    base = M_MMAP
    for i, mapped in enumerate(_split(arenas, [0.25] * 4)):
        npages = max(8, int(round(max(1, mapped) / 0.9)))
        regions.append(RegionSpec(f"arena-{i}", base, npages, fill=0.9))
        base += npages + 128
    regions.append(RegionSpec("stack", M_STACK, max(16, stack)))
    return regions


def _ml_training_plan(budget: int) -> List[RegionSpec]:
    params, grads, optim, acts, stack = _split(
        budget, (0.22, 0.22, 0.34, 0.215, 0.005)
    )
    acts_pages = max(16, int(round(max(1, acts) / 0.97)))
    gap = 256
    base = M_MMAP
    regions = []
    for name, mapped, fill in (
        ("params", params, 1.0),
        ("grads", grads, 1.0),
        ("optimizer", optim, 1.0),
    ):
        npages = max(16, mapped)
        regions.append(RegionSpec(name, base, npages, fill=fill))
        base += npages + gap
    # Activation arena: allocator churn between micro-batches leaves a
    # few holes even in an otherwise dense arena.
    regions.append(RegionSpec("activations", base, acts_pages, fill=0.97))
    regions.append(RegionSpec("stack", M_STACK, max(8, stack)))
    return regions


# ---------------------------------------------------------------------------
# Trace styles
# ---------------------------------------------------------------------------
def _same_process(mixed: Trace, name: str) -> Trace:
    """Strip interleave flush points: one process, no context switches."""
    return Trace(mixed.vpns, name=name, subblock_factor=mixed.subblock_factor)


def _kv_store_style(workload: Workload, length: int, seed: int) -> Trace:
    # Zipf key traffic over a hot subset (high address reuse), with a
    # background eviction/compaction scan walking the slabs.
    space = workload.spaces[0]
    hot = working_set_trace(
        space, (7 * length) // 8,
        working_set_pages=min(max(256, len(space) // 8), 8192),
        churn=0.0015, locality=1.1, seed=seed, name="keys",
    )
    scan = sweep_trace(space, length - len(hot), name="evict-scan")
    mixed = Trace.interleave([hot, scan], quantum=4096, name=workload.name)
    return _same_process(mixed, workload.name)


def _web_server_style(workload: Workload, length: int, seed: int) -> Trace:
    # Per-connection churn: the working set is small and turns over
    # fast (connections die); the accept path re-touches library text.
    space = workload.spaces[0]
    conns = working_set_trace(
        space, (4 * length) // 5,
        working_set_pages=min(max(128, len(space) // 16), 2048),
        churn=0.02, locality=1.05, seed=seed, name="conns",
    )
    libs = sweep_trace(
        space, length - len(conns), name="accept",
        segment_names=["libs"], repeat=6,
    )
    mixed = Trace.interleave([conns, libs], quantum=1024, name=workload.name)
    return _same_process(mixed, workload.name)


def _compiler_style(workload: Workload, length: int, seed: int) -> Trace:
    # Front-end phases (hot working set over AST/heap) alternating with
    # generation sweeps that touch every live heap page.
    space = workload.spaces[0]
    quarter = length // 4
    parse = working_set_trace(
        space, quarter, working_set_pages=min(max(128, len(space) // 12), 4096),
        churn=0.004, locality=1.3, seed=seed, name="parse",
    )
    sweep0 = sweep_trace(
        space, quarter, name="gen-sweep", segment_names=["heap"], repeat=24
    )
    codegen = working_set_trace(
        space, quarter, working_set_pages=min(max(128, len(space) // 12), 4096),
        churn=0.004, locality=1.3, seed=seed + 1, name="codegen",
    )
    sweep1 = sweep_trace(
        space, length - 3 * quarter, name="gen-sweep-2",
        segment_names=["heap"], repeat=24,
    )
    return phased_trace([parse, sweep0, codegen, sweep1], name=workload.name)


def _ml_training_style(workload: Workload, length: int, seed: int) -> Trace:
    # Epoch-strided sweeps over the tensor arenas alternating with hot
    # activation reuse (forward/backward touching a recent subset).
    space = workload.spaces[0]
    quarter = length // 4
    epoch0 = stride_trace(space, quarter, stride_pages=16, name="epoch-0",
                          repeat=4)
    acts0 = pointer_chase_trace(space, quarter, hot_fraction=0.2, seed=seed,
                                name="acts-0", repeat=6)
    epoch1 = stride_trace(space, quarter, stride_pages=16, name="epoch-1",
                          repeat=4)
    acts1 = pointer_chase_trace(space, length - 3 * quarter, hot_fraction=0.2,
                                seed=seed + 1, name="acts-1", repeat=6)
    return phased_trace([epoch0, acts0, epoch1, acts1], name=workload.name)


# ---------------------------------------------------------------------------
# The families
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ModernWorkloadSpec:
    """A footprint-parameterized workload family.

    ``miss_band`` is the calibration target the audit checks in place of
    Table 1's %-time column: the acceptable simulated TLB misses per
    1000 references (64-entry fully associative baseline) at any
    footprint from ``default_footprint_mb`` up — the shapes are designed
    so miss intensity saturates once the footprint exceeds TLB reach.
    """

    name: str
    description: str
    density: str  # "dense" | "bursty" | "sparse"
    default_footprint_mb: int
    miss_band: Tuple[float, float]  # misses per 1k references
    plan_builder: Callable[[int], List[RegionSpec]]
    trace_builder: Callable[[Workload, int, int], Trace]

    def regions_for(self, footprint_mb: Optional[float] = None) -> List[RegionSpec]:
        """The region plan at one footprint."""
        fp = self.default_footprint_mb if footprint_mb is None else footprint_mb
        if fp < 1:
            raise ConfigurationError(
                f"workload {self.name!r}: footprint_mb must be >= 1, got {fp}"
            )
        return self.plan_builder(int(round(fp * PAGES_PER_MB)))

    def mapped_pages(self, footprint_mb: Optional[float] = None) -> int:
        """Exact mapped pages the plan realises at one footprint."""
        return _planned_pages(self.regions_for(footprint_mb))

    def spec_for(self, footprint_mb: Optional[float] = None) -> WorkloadSpec:
        """Realise one family member as a suite-compatible spec.

        The ``table1`` hashed-KB slot carries the planned footprint so
        :mod:`repro.workloads.validation` audits it with the same
        arithmetic it applies to the paper workloads.
        """
        fp = self.default_footprint_mb if footprint_mb is None else footprint_mb
        regions = self.regions_for(fp)
        pages = _planned_pages(regions)
        hashed_kb = max(1, int(round(pages * _HASHED_PTE_BYTES / 1024)))
        return WorkloadSpec(
            name=self.name,
            description=f"{self.description} ({fp:g} MB)",
            processes=1,
            density=self.density,
            table1=(0, 0, 0, 0, hashed_kb),
            region_builder=lambda seed, _regions=regions: list(_regions),
            trace_builder=self.trace_builder,
        )


MODERN_WORKLOADS: Dict[str, ModernWorkloadSpec] = {
    spec.name: spec
    for spec in [
        ModernWorkloadSpec(
            name="kv-store",
            description="slab-allocated KV store, Zipf key traffic",
            density="dense",
            default_footprint_mb=64,
            miss_band=(200.0, 900.0),
            plan_builder=_kv_store_plan,
            trace_builder=_kv_store_style,
        ),
        ModernWorkloadSpec(
            name="web-server",
            description="event-driven web server, per-connection mmap churn",
            density="sparse",
            default_footprint_mb=48,
            miss_band=(150.0, 700.0),
            plan_builder=_web_server_plan,
            trace_builder=_web_server_style,
        ),
        ModernWorkloadSpec(
            name="compiler",
            description="optimizing compiler, leaky heap + generation sweeps",
            density="bursty",
            default_footprint_mb=32,
            miss_band=(50.0, 300.0),
            plan_builder=_compiler_plan,
            trace_builder=_compiler_style,
        ),
        ModernWorkloadSpec(
            name="ml-training",
            description="ML training loop, dense tensor arenas",
            density="dense",
            default_footprint_mb=96,
            miss_band=(100.0, 350.0),
            plan_builder=_ml_training_plan,
            trace_builder=_ml_training_style,
        ),
    ]
}


def load_modern_workload(
    name: str,
    layout: AddressLayout = DEFAULT_LAYOUT,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 1234,
    with_trace: bool = True,
    footprint_mb: Optional[float] = None,
) -> Workload:
    """Build one modern workload at a chosen (or default) footprint."""
    from repro.workloads.suite import load_workload

    if name not in MODERN_WORKLOADS:
        raise ConfigurationError(
            f"unknown modern workload {name!r}; known: {sorted(MODERN_WORKLOADS)}"
        )
    return load_workload(
        name, layout, trace_length, seed=seed, with_trace=with_trace,
        footprint_mb=footprint_mb,
    )
