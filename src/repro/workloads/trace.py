"""Reference trace container and statistics.

A :class:`Trace` is a numpy-backed sequence of virtual page numbers — the
page-granular reference stream that drives TLB simulation.  Multiprocess
traces additionally carry *switch points*: indices at which the executing
process changes, where a TLB without address-space identifiers must flush
(the paper's compress and gcc workloads are multiprogrammed, §6.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a reference trace."""

    references: int
    unique_pages: int
    unique_blocks: int
    switches: int

    @property
    def reuse_factor(self) -> float:
        """References per distinct page touched."""
        return self.references / self.unique_pages if self.unique_pages else 0.0


class Trace:
    """A page-granular reference stream, optionally multiprocess.

    Parameters
    ----------
    vpns:
        The referenced virtual page numbers, in order.
    name:
        Label used in reports.
    switch_points:
        Sorted indices where a context switch happens *before* the
        reference at that index.
    subblock_factor:
        Pages per block for block statistics (defaults to 16).
    """

    def __init__(
        self,
        vpns: Sequence[int],
        name: str = "trace",
        switch_points: Optional[Sequence[int]] = None,
        subblock_factor: int = 16,
        segment_owners: Optional[Sequence[int]] = None,
    ):
        self.vpns = np.asarray(vpns, dtype=np.int64)
        if self.vpns.ndim != 1:
            raise ConfigurationError("trace must be one-dimensional")
        self.name = name
        self.switch_points: Tuple[int, ...] = tuple(switch_points or ())
        if any(
            not 0 <= p <= len(self.vpns) for p in self.switch_points
        ) or list(self.switch_points) != sorted(self.switch_points):
            raise ConfigurationError("switch points must be sorted indices")
        self.subblock_factor = subblock_factor
        #: Owning process index per scheduling segment (for ASID-tagged
        #: simulation); defaults to all zero (single process).
        if segment_owners is not None:
            if len(segment_owners) != len(self.switch_points) + 1:
                raise ConfigurationError(
                    "need one segment owner per scheduling segment "
                    f"({len(self.switch_points) + 1}), got "
                    f"{len(segment_owners)}"
                )
            self.segment_owners: Tuple[int, ...] = tuple(segment_owners)
        else:
            self.segment_owners = (0,) * (len(self.switch_points) + 1)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.vpns.shape[0])

    def __iter__(self) -> Iterator[int]:
        return iter(self.vpns.tolist())

    def segments(self) -> Iterator[Tuple[bool, np.ndarray]]:
        """Yield ``(flush_first, vpn_array)`` per scheduling segment."""
        bounds: List[int] = [0, *self.switch_points, len(self.vpns)]
        first = True
        for start, end in zip(bounds, bounds[1:]):
            if start == end:
                continue
            yield (not first), self.vpns[start:end]
            first = False

    def segments_with_owner(self) -> Iterator[Tuple[int, bool, np.ndarray]]:
        """Yield ``(owner, flush_first, vpn_array)`` per segment."""
        bounds: List[int] = [0, *self.switch_points, len(self.vpns)]
        first = True
        for owner, (start, end) in zip(
            self.segment_owners, zip(bounds, bounds[1:])
        ):
            if start == end:
                continue
            yield owner, (not first), self.vpns[start:end]
            first = False

    def content_digest(self) -> bytes:
        """SHA-256 over everything that affects a TLB simulation.

        Covers the reference stream, scheduling structure, and block
        geometry — the trace inputs of a phase-1 run — so persistent
        caches can content-address miss streams.  Memoised: traces are
        immutable once built.
        """
        cached = getattr(self, "_content_digest", None)
        if cached is None:
            digest = hashlib.sha256()
            digest.update(np.ascontiguousarray(self.vpns).tobytes())
            digest.update(repr(self.switch_points).encode())
            digest.update(repr(self.segment_owners).encode())
            digest.update(str(self.subblock_factor).encode())
            cached = self._content_digest = digest.digest()
        return cached

    def stats(self) -> TraceStats:
        """Compute summary statistics."""
        unique_pages = int(np.unique(self.vpns).shape[0]) if len(self) else 0
        blocks = self.vpns // self.subblock_factor
        unique_blocks = int(np.unique(blocks).shape[0]) if len(self) else 0
        return TraceStats(
            references=len(self),
            unique_pages=unique_pages,
            unique_blocks=unique_blocks,
            switches=len(self.switch_points),
        )

    def head(self, n: int) -> "Trace":
        """A prefix of the trace (switch points clipped accordingly)."""
        return Trace(
            self.vpns[:n],
            name=f"{self.name}[:{n}]",
            switch_points=[p for p in self.switch_points if p < n],
            subblock_factor=self.subblock_factor,
        )

    @staticmethod
    def interleave(
        traces: Sequence["Trace"],
        quantum: int,
        name: str = "interleaved",
        seed: int = 0,
    ) -> "Trace":
        """Round-robin schedule several per-process traces.

        Each process runs ``quantum`` references per turn; a switch point
        is recorded at every turn boundary.  This is how the
        multiprogrammed workloads (compress, gcc) are assembled.
        """
        if quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
        cursors = [0] * len(traces)
        parts: List[np.ndarray] = []
        switches: List[int] = []
        owners: List[int] = []
        position = 0
        last_process = -1
        live = True
        while live:
            live = False
            for i, trace in enumerate(traces):
                start = cursors[i]
                if start >= len(trace):
                    continue
                end = min(start + quantum, len(trace))
                chunk = trace.vpns[start:end]
                cursors[i] = end
                if parts and i != last_process:
                    switches.append(position)
                    owners.append(i)
                elif not parts:
                    owners.append(i)
                parts.append(chunk)
                position += len(chunk)
                last_process = i
                live = True
        combined = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return Trace(
            combined,
            name=name,
            switch_points=switches,
            subblock_factor=traces[0].subblock_factor if traces else 16,
            segment_owners=owners if owners else None,
        )

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self)} refs)"
