"""Calibration audit: do the synthetic workloads still match Table 1?

The suite's credibility rests on calibration (DESIGN.md §2).  This module
turns the calibration targets into a checkable report so any change to
the generators that drifts a workload away from the paper is caught by
`tests/test_workloads.py` and visible via
``python -m repro.workloads.validation``:

- **footprint** — mapped pages vs the hashed-page-table KB of Table 1;
- **miss intensity** — simulated TLB miss ratio vs the ratio implied by
  Table 1's %-time-in-miss-handling column (at the paper's 40-cycle
  penalty and this library's reference-cost constant);
- **density class** — the qualitative dense/bursty/sparse label vs the
  measured *region-level* density (pages mapped per populated 512-page
  region).  The paper's "sparse" means address-space scatter — what makes
  linear tables blow up in Figure 9 — not per-block emptiness: compress's
  blocks are quite full while its regions are nearly empty.  Every label
  is checked: dense above :data:`DENSE_REGION_DENSITY`, sparse below
  :data:`SPARSE_REGION_DENSITY`, and bursty inside
  :data:`BURSTY_REGION_DENSITY_BAND` — so no workload escapes the audit
  by sitting in the dense/sparse overlap.

The modern production models (:mod:`repro.workloads.modern`) are audited
with the same machinery: their footprint target is the planned page
count the family encodes into the ``table1`` hashed-KB slot, and their
miss-intensity target is the family's own ``miss_band`` (misses per 1000
references, footprint-saturated) instead of a Table 1 column.  Audits of
modern workloads run at the family's calibration (default) footprint
unless ``footprint_mb`` says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.workloads.suite import PAPER_WORKLOADS, Workload, load_workload

#: Tolerated relative footprint error vs the Table 1 target.
FOOTPRINT_TOLERANCE = 0.15
#: Tolerated ratio band for miss intensity vs the Table 1-implied target.
MISS_RATIO_BAND = (0.5, 2.0)
#: Region-level (512-page) density thresholds for the density classes:
#: dense spaces fill most of each touched 2 MB region, sparse ones
#: scatter few pages per region.
DENSE_REGION_DENSITY = 0.35
SPARSE_REGION_DENSITY = 0.25
#: Bursty spaces sit between scatter and full: above the sparse line,
#: but with enough holes that they never look fully dense.
BURSTY_REGION_DENSITY_BAND = (SPARSE_REGION_DENSITY, 0.90)

#: Mirrors repro.experiments.table1's time model.
MISS_PENALTY_CYCLES = 40
CYCLES_PER_REFERENCE = 30


@dataclass
class CalibrationCheck:
    """One workload's audit outcome."""

    name: str
    footprint_ratio: float
    miss_ratio: Optional[float]
    target_miss_ratio: Optional[float]
    region_density: float
    density_class: str
    ok: bool
    problems: List[str]


def implied_miss_ratio(percent_time: int) -> Optional[float]:
    """Invert Table 1's %-time column into a per-reference miss ratio."""
    if percent_time <= 0:
        return None
    fraction = percent_time / 100.0
    return (fraction * CYCLES_PER_REFERENCE) / (
        MISS_PENALTY_CYCLES * (1.0 - fraction)
    )


def check_workload(
    name: str,
    trace_length: int = 100_000,
    workload: Optional[Workload] = None,
    footprint_mb: Optional[float] = None,
) -> CalibrationCheck:
    """Audit one workload against its calibration targets.

    Paper workloads audit against Table 1; modern workloads
    (:mod:`repro.workloads.modern`) against their family's planned
    footprint and miss band, at ``footprint_mb`` (default: the family's
    calibration footprint).
    """
    spec = PAPER_WORKLOADS.get(name)
    family = None
    if spec is None:
        from repro.workloads.modern import MODERN_WORKLOADS

        family = MODERN_WORKLOADS[name]
        spec = family.spec_for(footprint_mb)
    if workload is None:
        workload = load_workload(
            name, trace_length=trace_length,
            footprint_mb=footprint_mb if family is not None else None,
        )
    problems: List[str] = []

    target_pages = spec.table1[4] * 1024 / 24.0
    footprint_ratio = workload.total_mapped_pages() / target_pages
    if abs(footprint_ratio - 1.0) > FOOTPRINT_TOLERANCE:
        problems.append(
            f"footprint off by {100 * (footprint_ratio - 1):+.0f}%"
        )

    measured_mr: Optional[float] = None
    target_mr = (
        implied_miss_ratio(spec.table1[3]) if family is None else None
    )
    if workload.trace is not None and (
        target_mr is not None or family is not None
    ):
        from repro.mmu.simulate import collect_misses
        from repro.mmu.tlb import FullyAssociativeTLB
        from repro.os.translation_map import TranslationMap

        tmap = TranslationMap.from_space(workload.union_space())
        stream = collect_misses(
            workload.trace, FullyAssociativeTLB(64), tmap
        )
        measured_mr = stream.miss_ratio
        if family is not None:
            per_kref = 1000.0 * measured_mr
            low, high = family.miss_band
            if not low <= per_kref <= high:
                problems.append(
                    f"miss intensity {per_kref:.0f}/1k outside the "
                    f"calibration band [{low:g}, {high:g}]"
                )
        else:
            ratio = measured_mr / target_mr
            if not MISS_RATIO_BAND[0] <= ratio <= MISS_RATIO_BAND[1]:
                problems.append(
                    f"miss intensity {ratio:.2f}x the Table 1 target"
                )

    densities = [space.density(512) for space in workload.spaces]
    region_density = sum(densities) / len(densities)
    if spec.density == "dense" and region_density < DENSE_REGION_DENSITY:
        problems.append(
            f"labelled dense but region density is {region_density:.2f}"
        )
    if spec.density == "sparse" and region_density >= SPARSE_REGION_DENSITY:
        problems.append(
            f"labelled sparse but region density is {region_density:.2f}"
        )
    if spec.density == "bursty" and not (
        BURSTY_REGION_DENSITY_BAND[0]
        <= region_density
        < BURSTY_REGION_DENSITY_BAND[1]
    ):
        problems.append(
            f"labelled bursty but region density is {region_density:.2f}"
        )

    return CalibrationCheck(
        name=name,
        footprint_ratio=footprint_ratio,
        miss_ratio=measured_mr,
        target_miss_ratio=target_mr,
        region_density=region_density,
        density_class=spec.density,
        ok=not problems,
        problems=problems,
    )


def audit(
    names: Optional[Sequence[str]] = None,
    trace_length: int = 100_000,
) -> Dict[str, CalibrationCheck]:
    """Audit every (or the named) workload, paper and modern alike."""
    if names is None:
        from repro.workloads.modern import MODERN_WORKLOADS

        names = list(PAPER_WORKLOADS) + list(MODERN_WORKLOADS)
    return {
        name: check_workload(name, trace_length)
        for name in names
    }


def report(checks: Dict[str, CalibrationCheck]) -> ExperimentResult:
    """Render an audit as a result table."""
    rows: List[List] = []
    for check in checks.values():
        rows.append(
            [
                check.name,
                round(check.footprint_ratio, 3),
                round(1000 * check.miss_ratio, 2)
                if check.miss_ratio is not None else None,
                round(1000 * check.target_miss_ratio, 2)
                if check.target_miss_ratio is not None else None,
                round(check.region_density, 2),
                check.density_class,
                "ok" if check.ok else "; ".join(check.problems),
            ]
        )
    return ExperimentResult(
        experiment="Workload calibration audit vs Table 1",
        headers=[
            "workload", "footprint ratio", "misses/1k (sim)",
            "misses/1k (target)", "region density", "class", "verdict",
        ],
        rows=rows,
        notes="Targets derive from Table 1 per DESIGN.md §2 (modern "
        "workloads: from their family's planned footprint and miss "
        f"band, DESIGN.md §5h); tolerances: "
        f"±{int(100 * FOOTPRINT_TOLERANCE)}% footprint, "
        f"{MISS_RATIO_BAND[0]}-{MISS_RATIO_BAND[1]}x miss intensity.",
    )


def main() -> None:
    """Print the audit table; non-zero exit when any workload drifted."""
    import sys

    checks = audit()
    print(report(checks).render(precision=2))
    sys.exit(0 if all(check.ok for check in checks.values()) else 1)


if __name__ == "__main__":
    main()
