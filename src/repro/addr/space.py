"""Sparse per-process address space model.

The paper's size experiments (§6.1) take "a snapshot of each workload's
mappings at a point near the program's maximum memory use" and build every
candidate page table from that snapshot.  :class:`AddressSpace` is that
snapshot: the set of valid VPN→PPN mappings for one process, organised so
the experiments can ask the questions the paper's formulae need —
``Nactive(P)``, page-block population histograms, and density statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.addr.layout import AddressLayout, DEFAULT_LAYOUT
from repro.errors import AddressError, MappingExistsError, PageFaultError

#: Default attribute bits for a fresh mapping: valid, readable, writable.
DEFAULT_ATTRS = 0x7


@dataclass(frozen=True)
class Mapping:
    """One valid virtual-to-physical page mapping.

    ``attrs`` carries the 12 bits of combined software/hardware attributes
    from the paper's example PTE (Figure 1): protection, reference/modified,
    cacheability, and software-reserved bits.  The library treats them as an
    opaque bit field.
    """

    ppn: int
    attrs: int = DEFAULT_ATTRS

    def with_attrs(self, attrs: int) -> "Mapping":
        """Return a copy of this mapping with replaced attribute bits."""
        return Mapping(self.ppn, attrs)


@dataclass(frozen=True)
class Segment:
    """A named, contiguous virtual address region (text, heap, a mmap, ...).

    Segments exist for workload modelling and reporting; translation only
    consults the per-page mappings.
    """

    name: str
    base_vpn: int
    npages: int

    @property
    def end_vpn(self) -> int:
        """One past the last VPN of the segment."""
        return self.base_vpn + self.npages

    def __contains__(self, vpn: int) -> bool:
        return self.base_vpn <= vpn < self.end_vpn


class AddressSpace:
    """The set of valid mappings for one process.

    This is the ground truth that page tables are built from and validated
    against.  It deliberately has no page-table structure of its own — a
    plain dictionary — so that every page table implementation can be
    cross-checked against it.
    """

    def __init__(
        self,
        layout: AddressLayout = DEFAULT_LAYOUT,
        name: str = "anonymous",
    ):
        self.layout = layout
        self.name = name
        self._mappings: Dict[int, Mapping] = {}
        self._segments: List[Segment] = []

    # ------------------------------------------------------------------
    # Mapping maintenance
    # ------------------------------------------------------------------
    def map(self, vpn: int, ppn: int, attrs: int = DEFAULT_ATTRS) -> None:
        """Install a mapping; raises if the VPN is already mapped."""
        self.layout.check_vpn(vpn)
        self.layout.check_ppn(ppn)
        if vpn in self._mappings:
            raise MappingExistsError(vpn)
        self._mappings[vpn] = Mapping(ppn, attrs)

    def map_range(
        self,
        base_vpn: int,
        ppns: Iterable[int],
        attrs: int = DEFAULT_ATTRS,
    ) -> None:
        """Map consecutive VPNs starting at ``base_vpn`` to given PPNs."""
        for i, ppn in enumerate(ppns):
            self.map(base_vpn + i, ppn, attrs)

    def remap(self, vpn: int, ppn: int, attrs: int = DEFAULT_ATTRS) -> None:
        """Replace the mapping for an already-mapped VPN."""
        if vpn not in self._mappings:
            raise PageFaultError(vpn, f"cannot remap unmapped VPN {vpn:#x}")
        self.layout.check_ppn(ppn)
        self._mappings[vpn] = Mapping(ppn, attrs)

    def unmap(self, vpn: int) -> Mapping:
        """Remove and return the mapping for a VPN."""
        try:
            return self._mappings.pop(vpn)
        except KeyError:
            raise PageFaultError(vpn, f"cannot unmap unmapped VPN {vpn:#x}") from None

    def translate(self, vpn: int) -> Mapping:
        """Return the mapping for a VPN, raising :class:`PageFaultError`."""
        try:
            return self._mappings[vpn]
        except KeyError:
            raise PageFaultError(vpn) from None

    def get(self, vpn: int) -> Optional[Mapping]:
        """Return the mapping for a VPN or None when unmapped."""
        return self._mappings.get(vpn)

    def is_mapped(self, vpn: int) -> bool:
        """True when the VPN has a valid mapping."""
        return vpn in self._mappings

    def protect(self, vpn: int, attrs: int) -> None:
        """Replace the attribute bits of an existing mapping."""
        mapping = self.translate(vpn)
        self._mappings[vpn] = mapping.with_attrs(attrs)

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    def add_segment(self, segment: Segment) -> None:
        """Record a named region (for workload modelling and reports)."""
        self._segments.append(segment)

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """All recorded segments, in insertion order."""
        return tuple(self._segments)

    # ------------------------------------------------------------------
    # Introspection used by the experiments
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._mappings)

    def __iter__(self) -> Iterator[int]:
        return iter(self._mappings)

    def items(self) -> Iterator[Tuple[int, Mapping]]:
        """Iterate ``(vpn, mapping)`` pairs in arbitrary order."""
        return iter(self._mappings.items())

    def vpns(self) -> List[int]:
        """All mapped VPNs, sorted ascending."""
        return sorted(self._mappings)

    def nactive(self, region_pages: int) -> int:
        """The paper's ``Nactive(P)``: the number of aligned ``region_pages``
        -page virtual regions containing at least one valid mapping.

        ``Nactive(1)`` is simply the mapped-page count; ``Nactive(s)`` is the
        number of populated page blocks; ``Nactive(512)`` is the number of
        populated 4 KB linear-page-table pages.
        """
        if region_pages < 1:
            raise AddressError(f"region size {region_pages} must be >= 1 page")
        if region_pages == 1:
            return len(self._mappings)
        return len({vpn // region_pages for vpn in self._mappings})

    def block_population(self) -> Counter:
        """Histogram: populated-slot count per page block → block count.

        Key ``k`` counts page blocks with exactly ``k`` of the layout's
        ``subblock_factor`` pages mapped.  This is the quantity that decides
        whether clustering wins (the paper's "six or more pages populated"
        break-even for subblock factor sixteen).
        """
        per_block: Counter = Counter()
        s = self.layout.subblock_factor
        for vpn in self._mappings:
            per_block[vpn // s] += 1
        histogram: Counter = Counter()
        for count in per_block.values():
            histogram[count] += 1
        return histogram

    def mean_block_population(self) -> float:
        """Average number of mapped pages per populated page block."""
        blocks = self.nactive(self.layout.subblock_factor)
        if blocks == 0:
            return 0.0
        return len(self._mappings) / blocks

    def resident_bytes(self) -> int:
        """Bytes of virtual memory with valid mappings."""
        return len(self._mappings) * self.layout.page_size

    def density(self, region_pages: int = 512) -> float:
        """Fraction of pages mapped within populated ``region_pages`` regions.

        1.0 means every touched region is fully populated (dense, linear
        page tables waste nothing); values near ``1/region_pages`` mean
        isolated single pages (maximally sparse).
        """
        regions = self.nactive(region_pages)
        if regions == 0:
            return 0.0
        return len(self._mappings) / (regions * region_pages)

    def copy(self) -> "AddressSpace":
        """Deep-enough copy: mappings and segments are duplicated."""
        clone = AddressSpace(self.layout, self.name)
        clone._mappings = dict(self._mappings)
        clone._segments = list(self._segments)
        return clone

    def __repr__(self) -> str:
        return (
            f"AddressSpace(name={self.name!r}, pages={len(self)}, "
            f"blocks={self.nactive(self.layout.subblock_factor)})"
        )
