"""64-bit virtual address geometry.

The paper assumes a 64-bit virtual address space with a 4 KB base page and
page blocks of an aligned group of consecutive base pages (the *subblock
factor*, typically sixteen, giving 64 KB page blocks).  This module collects
all the shift-and-mask arithmetic in one place so the page tables, TLBs, and
workload generators all agree on how an address decomposes:

::

    63                          16 15    12 11         0
    +-----------------------------+--------+------------+
    |            VPBN             |  Boff  | page offset|   (s = 16)
    +-----------------------------+--------+------------+
    |                VPN                   |
    +--------------------------------------+

where ``VPN = va >> page_shift``, ``Boff = VPN mod s``, and
``VPBN = VPN div s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressError, AlignmentError, ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

#: Number of bits in a full virtual address (the paper's subject).
VA_BITS = 64


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power of two, raising otherwise.

    >>> log2_exact(4096)
    12
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressLayout:
    """Immutable description of how virtual addresses decompose.

    Parameters
    ----------
    page_shift:
        log2 of the base page size.  The paper uses 12 (4 KB pages)
        throughout.
    subblock_factor:
        Number of base pages per page block (the paper's ``s``); must be a
        power of two.  The paper's default is sixteen (64 KB page blocks).
    va_bits:
        Virtual address width.  64 for the paper's subject machines.
    pa_bits:
        Physical address width.  The paper's example PTE (Figure 1) assumes
        a 40-bit physical address, i.e. a 28-bit PPN with 4 KB pages.
    """

    page_shift: int = 12
    subblock_factor: int = 16
    va_bits: int = VA_BITS
    pa_bits: int = 40

    # Derived fields (computed in __post_init__).
    block_shift: int = field(init=False)

    def __post_init__(self) -> None:
        if self.page_shift < 1 or self.page_shift >= self.va_bits:
            raise ConfigurationError(
                f"page_shift {self.page_shift} out of range for "
                f"{self.va_bits}-bit addresses"
            )
        if not is_power_of_two(self.subblock_factor):
            raise ConfigurationError(
                f"subblock factor must be a power of two, got "
                f"{self.subblock_factor}"
            )
        if self.pa_bits <= self.page_shift:
            raise ConfigurationError(
                f"pa_bits {self.pa_bits} must exceed page_shift "
                f"{self.page_shift}"
            )
        object.__setattr__(
            self,
            "block_shift",
            self.page_shift + log2_exact(self.subblock_factor),
        )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        """Base page size in bytes (4096 for the paper)."""
        return 1 << self.page_shift

    @property
    def block_size(self) -> int:
        """Page block size in bytes (64 KB for the paper's defaults)."""
        return 1 << self.block_shift

    @property
    def vpn_bits(self) -> int:
        """Number of bits in a virtual page number."""
        return self.va_bits - self.page_shift

    @property
    def ppn_bits(self) -> int:
        """Number of bits in a physical page number."""
        return self.pa_bits - self.page_shift

    @property
    def max_vpn(self) -> int:
        """Largest representable virtual page number."""
        return (1 << self.vpn_bits) - 1

    @property
    def max_ppn(self) -> int:
        """Largest representable physical page number."""
        return (1 << self.ppn_bits) - 1

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def vpn(self, va: int) -> int:
        """Virtual page number of a virtual address."""
        self.check_va(va)
        return va >> self.page_shift

    def page_offset(self, va: int) -> int:
        """Byte offset of a virtual address within its base page."""
        self.check_va(va)
        return va & (self.page_size - 1)

    def va_of_vpn(self, vpn: int) -> int:
        """First virtual address of a virtual page."""
        self.check_vpn(vpn)
        return vpn << self.page_shift

    def vpbn(self, vpn: int) -> int:
        """Virtual page block number of a virtual page (the hash tag)."""
        self.check_vpn(vpn)
        return vpn >> log2_exact(self.subblock_factor)

    def boff(self, vpn: int) -> int:
        """Block offset: index of a virtual page within its page block."""
        self.check_vpn(vpn)
        return vpn & (self.subblock_factor - 1)

    def split(self, vpn: int) -> tuple[int, int]:
        """Split a VPN into ``(VPBN, Boff)`` as the clustered lookup does."""
        return self.vpbn(vpn), self.boff(vpn)

    def vpn_of_block(self, vpbn: int, boff: int = 0) -> int:
        """Inverse of :meth:`split`: rebuild a VPN from block coordinates."""
        if not 0 <= boff < self.subblock_factor:
            raise AddressError(
                f"block offset {boff} out of range for subblock factor "
                f"{self.subblock_factor}"
            )
        vpn = (vpbn << log2_exact(self.subblock_factor)) | boff
        self.check_vpn(vpn)
        return vpn

    def block_base_vpn(self, vpn: int) -> int:
        """First VPN of the page block containing ``vpn``."""
        return vpn & ~(self.subblock_factor - 1)

    def block_vpns(self, vpbn: int) -> range:
        """All VPNs belonging to one page block, lowest first."""
        base = self.vpn_of_block(vpbn)
        return range(base, base + self.subblock_factor)

    # ------------------------------------------------------------------
    # Superpage arithmetic
    # ------------------------------------------------------------------
    def superpage_pages(self, size_bytes: int) -> int:
        """Number of base pages in a superpage of ``size_bytes`` bytes."""
        if size_bytes % self.page_size:
            raise AlignmentError(
                f"superpage size {size_bytes} is not a multiple of the "
                f"{self.page_size}-byte base page"
            )
        npages = size_bytes // self.page_size
        if not is_power_of_two(npages):
            raise AlignmentError(
                f"superpage size {size_bytes} is not a power-of-two "
                f"multiple of the base page"
            )
        return npages

    def is_superpage_aligned(self, vpn: int, npages: int) -> bool:
        """True when ``vpn`` is naturally aligned for an ``npages`` superpage.

        The paper (§4.1) requires superpages to be aligned in both virtual
        and physical memory; this is the virtual half of that check.
        """
        if not is_power_of_two(npages):
            raise AlignmentError(f"superpage page count {npages} not a power of two")
        return (vpn & (npages - 1)) == 0

    def superpage_base(self, vpn: int, npages: int) -> int:
        """First VPN of the ``npages``-page superpage containing ``vpn``."""
        if not is_power_of_two(npages):
            raise AlignmentError(f"superpage page count {npages} not a power of two")
        return vpn & ~(npages - 1)

    def properly_placed(self, vpn: int, ppn: int, npages: int) -> bool:
        """True when a VPN→PPN pair sits at matching offsets in an aligned
        ``npages`` block on both the virtual and physical side.

        This is the paper's *proper placement* condition (§4.1): a physical
        page participates in a superpage or partial-subblock PTE only when
        it occupies the slot in an aligned physical block corresponding to
        its slot in the aligned virtual block.
        """
        if not is_power_of_two(npages):
            raise AlignmentError(f"block page count {npages} not a power of two")
        return (vpn & (npages - 1)) == (ppn & (npages - 1))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_va(self, va: int) -> None:
        """Raise :class:`AddressError` unless ``va`` is representable."""
        if not 0 <= va < (1 << self.va_bits):
            raise AddressError(f"virtual address {va:#x} outside {self.va_bits}-bit space")

    def check_vpn(self, vpn: int) -> None:
        """Raise :class:`AddressError` unless ``vpn`` is representable."""
        if not 0 <= vpn <= self.max_vpn:
            raise AddressError(f"VPN {vpn:#x} outside {self.vpn_bits}-bit range")

    def check_ppn(self, ppn: int) -> None:
        """Raise :class:`AddressError` unless ``ppn`` is representable."""
        if not 0 <= ppn <= self.max_ppn:
            raise AddressError(f"PPN {ppn:#x} outside {self.ppn_bits}-bit range")

    def describe(self) -> str:
        """Human-readable one-line summary of the layout."""
        return (
            f"{self.va_bits}-bit VA, {self.page_size // KB} KB pages, "
            f"subblock factor {self.subblock_factor} "
            f"({self.block_size // KB} KB page blocks), "
            f"{self.pa_bits}-bit PA"
        )


#: The paper's base configuration: 64-bit VA, 4 KB pages, subblock factor 16.
DEFAULT_LAYOUT = AddressLayout()
