"""Address-space substrate: 64-bit virtual address geometry and sparse maps.

This package models the *virtual address* side of the paper:

- :mod:`repro.addr.layout` — page/page-block arithmetic for a 64-bit
  virtual address space: splitting addresses into virtual page numbers
  (VPN), virtual page block numbers (VPBN), and block offsets (Boff), plus
  superpage alignment mathematics.
- :mod:`repro.addr.space` — a sparse :class:`~repro.addr.space.AddressSpace`
  holding the set of valid virtual-to-physical mappings for one process,
  with the density/burstiness statistics the page-table size experiments
  consume.
"""

from repro.addr.layout import (
    AddressLayout,
    DEFAULT_LAYOUT,
    KB,
    MB,
    GB,
    TB,
)
from repro.addr.space import AddressSpace, Mapping, Segment

__all__ = [
    "AddressLayout",
    "AddressSpace",
    "DEFAULT_LAYOUT",
    "Mapping",
    "Segment",
    "KB",
    "MB",
    "GB",
    "TB",
]
