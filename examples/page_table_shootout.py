#!/usr/bin/env python
"""Page-table shootout over a paper workload (the §6 methodology, small).

Loads one calibrated workload, builds the full comparison set of page
tables from the same snapshot, and measures both paper metrics — table
size and cache lines per TLB miss — under two TLB architectures.  This is
Figures 9/11a/11d for a single workload, runnable in a few seconds.

Run:  python examples/page_table_shootout.py [workload]
"""

import sys

from repro import load_workload
from repro.analysis.metrics import make_table, normalised_sizes
from repro.experiments.common import get_translation_map
from repro.mmu.simulate import collect_misses, replay_misses
from repro.mmu.subblock_tlb import CompleteSubblockTLB
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.translation_map import TranslationMap

SERIES = ("linear-1lvl", "forward-mapped", "hashed", "clustered")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mp3d"
    workload = load_workload(name, trace_length=60_000)
    print(f"workload {name}: {workload.total_mapped_pages()} mapped pages, "
          f"{len(workload.trace)} references")

    tmap = TranslationMap.from_space(workload.union_space())
    tables = {}
    sizes = {}
    for series in SERIES:
        table = make_table(series)
        tmap.populate(table, base_pages_only=True)
        tables[series] = table
        sizes[series] = table.size_bytes()
    norm = normalised_sizes(sizes, "hashed")

    print(f"\n{'table':16s} {'bytes':>10s} {'vs hashed':>10s}")
    for series in SERIES:
        print(f"{series:16s} {sizes[series]:10,d} {norm[series]:10.3f}")

    for label, tlb, complete in [
        ("single-page-size TLB", FullyAssociativeTLB(64), False),
        ("complete-subblock TLB + prefetch", CompleteSubblockTLB(64), True),
    ]:
        stream = collect_misses(workload.trace, tlb, tmap)
        print(f"\n{label}: {stream.misses} misses "
              f"(miss ratio {stream.miss_ratio:.4f})")
        print(f"{'table':16s} {'lines/miss':>11s}")
        for series in SERIES:
            table = make_table(series)
            tmap.populate(table, base_pages_only=True)
            replay = replay_misses(stream, table, complete_subblock=complete)
            print(f"{series:16s} {replay.lines_per_miss:11.3f}")


if __name__ == "__main__":
    main()
