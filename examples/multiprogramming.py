#!/usr/bin/env python
"""Multiprogramming: context-switch flushes vs ASID-tagged TLBs (§7).

The paper's §7 warns that multiprogramming "can increase the number of
TLB misses and make TLB miss handling more significant".  This example
schedules two processes round-robin over one TLB and compares flushing at
every switch (the paper's simulation environment) against ASID tagging
(what 64-bit processors actually ship), across TLB sizes.

Run:  python examples/multiprogramming.py
"""

import numpy as np

from repro import AddressSpace, FullyAssociativeTLB, TranslationMap
from repro.mmu.asid import ASIDTaggedTLB
from repro.mmu.simulate import collect_misses
from repro.workloads.trace import Trace


def make_process(base_vpn: int, pages: int, refs: int, seed: int) -> Trace:
    """A process looping over its working set with mild randomness."""
    rng = np.random.default_rng(seed)
    vpns = base_vpn + rng.integers(0, pages, size=refs, dtype=np.int64)
    return Trace(vpns, name=f"proc@{base_vpn:#x}")


def main() -> None:
    space = AddressSpace(name="two-procs")
    for vpn in range(0x1000, 0x1000 + 48):
        space.map(vpn, vpn - 0x800)
    for vpn in range(0x90000, 0x90000 + 48):
        space.map(vpn, vpn - 0x80000)
    tmap = TranslationMap.from_space(space)

    schedule = Trace.interleave(
        [
            make_process(0x1000, 48, 30_000, seed=1),
            make_process(0x90000, 48, 30_000, seed=2),
        ],
        quantum=2_000,
    )
    print(f"schedule: {len(schedule)} refs, "
          f"{len(schedule.switch_points)} context switches\n")

    print(f"{'TLB entries':>11s} {'flush misses':>13s} {'ASID misses':>12s} "
          f"{'ratio':>6s}")
    for entries in (32, 64, 128, 256):
        flush = collect_misses(schedule, FullyAssociativeTLB(entries), tmap)
        asid = collect_misses(
            schedule, ASIDTaggedTLB(FullyAssociativeTLB(entries)), tmap
        )
        ratio = flush.misses / asid.misses if asid.misses else float("inf")
        print(f"{entries:11d} {flush.misses:13d} {asid.misses:12d} "
              f"{ratio:6.1f}")

    print(
        "\nBoth working sets total 96 pages: once the TLB holds them "
        "(128+ entries), flushing pays ~full-working-set reloads per "
        "switch while ASID tagging misses only compulsorily."
    )


if __name__ == "__main__":
    main()
