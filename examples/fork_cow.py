#!/usr/bin/env python
"""fork() with copy-on-write over clustered page tables.

The classic OS sequence, end to end on this library's machinery: a parent
maps its image, forks — every frame shared read-only between two page
tables — and both processes run.  Reads stay shared; each first write
takes a protection fault, the COW handler copies the frame, and the pair
diverge one page at a time.

Run:  python examples/fork_cow.py
"""

import random

from repro import ClusteredPageTable, FullyAssociativeTLB
from repro.os.cow import COWManager


def main() -> None:
    cow = COWManager(
        ClusteredPageTable(), ClusteredPageTable(),
        lambda: FullyAssociativeTLB(32), frames=1024,
    )
    for vpn in range(0x1000, 0x1040):     # a 256 KB parent image
        cow.map_parent(vpn)
    shared = cow.fork()
    print(f"forked: {shared} pages shared read-only "
          f"(parent table {cow.parent.page_table.size_bytes()} B, "
          f"child table {cow.child.page_table.size_bytes()} B)\n")

    rng = random.Random(7)
    for step in range(2_000):
        who = "parent" if rng.random() < 0.5 else "child"
        vpn = 0x1000 + rng.randrange(0x40)
        if rng.random() < 0.1:            # 10% writes
            cow.write(who, vpn)
        else:
            cow.read(who, vpn)
        if step in (0, 99, 499, 1999):
            s = cow.stats
            print(f"after {step + 1:4d} accesses: shared={cow.shared_pages:2d}  "
                  f"breaks={s.cow_breaks:2d}  frames copied={s.frames_copied:2d}  "
                  f"protection faults="
                  f"{cow.parent_mmu.stats.protection_faults + cow.child_mmu.stats.protection_faults}")

    cow.check_consistency()
    print("\nconsistency verified: every broken page has two frames, "
          "every shared page one.")


if __name__ == "__main__":
    main()
