#!/usr/bin/env python
"""Superpages and partial-subblocks end to end (§4–§5 of the paper).

Shows the whole operating-system pipeline the paper argues for:

1. a *reservation* frame allocator places pages of a virtual page block
   into one aligned physical block (proper placement, §4.1);
2. the VM manager promotes fully-populated, properly-placed blocks to
   superpage PTEs inside the clustered page table (§5);
3. the dynamic page-size policy classifies a snapshot into base /
   partial-subblock / superpage PTEs, shrinking the page table (Fig 10);
4. a superpage TLB then misses far less, while the clustered table
   services the remaining misses in ~1 cache line (Fig 11b).

Run:  python examples/superpage_promotion.py
"""

from repro import (
    ClusteredPageTable,
    DynamicPageSizePolicy,
    FullyAssociativeTLB,
    MMU,
    ReservationAllocator,
    SuperpageTLB,
    TranslationMap,
    VirtualMemoryManager,
)
from repro.pagetables.pte import PTEKind


def main() -> None:
    table = ClusteredPageTable()
    allocator = ReservationAllocator(total_frames=4096)
    vm = VirtualMemoryManager(table, allocator, auto_promote=True)

    # Fault in a 512 KB buffer (8 full page blocks) and a partial block.
    vm.map_range(0x10000, 128)   # eight 64 KB blocks -> superpages
    vm.map_range(0x20000, 10)    # partial block -> stays per-page for now
    vm.check_consistency()

    print("after mapping with page reservation + auto-promotion:")
    print(f"  promotions:            {vm.stats.promotions}")
    print(f"  proper placement rate: {allocator.stats.placement_rate:.2%}")
    print(f"  clustered table size:  {table.size_bytes()} bytes "
          f"({table.node_count} nodes)")

    kinds = {}
    for node in table.nodes():
        kinds[node.kind.name] = kinds.get(node.kind.name, 0) + 1
    print(f"  node formats:          {kinds}")

    # Coalesce the partial block into a 24-byte partial-subblock PTE.
    vpbn = table.layout.vpbn(0x20000)
    if table.coalesce_block(vpbn):
        print(f"  coalesced block {vpbn:#x} into a partial-subblock PTE "
              f"-> table now {table.size_bytes()} bytes")

    # Policy view of the same snapshot (what Figure 10 measures).
    policy = DynamicPageSizePolicy()
    tmap = TranslationMap.from_space(vm.space, policy)
    print(f"\npolicy classification: {tmap.counts()} "
          f"(fss = {tmap.wide_fraction():.2f})")

    # TLB payoff: sweep the buffer under both TLB architectures.
    sweep = [0x10000 + (i % 128) for i in range(20_000)]
    for label, tlb in [
        ("single-page-size TLB", FullyAssociativeTLB(64)),
        ("superpage TLB       ", SuperpageTLB(64, page_sizes=(1, 16))),
    ]:
        fresh = ClusteredPageTable()
        tmap.populate(fresh, base_pages_only=(tlb.__class__ is FullyAssociativeTLB))
        mmu = MMU(tlb, fresh)
        for vpn in sweep:
            mmu.translate(vpn)
        superpage_hits = mmu.stats.misses_by_kind.get(PTEKind.SUPERPAGE, 0)
        print(f"  {label}: {mmu.stats.tlb_misses:5d} misses, "
              f"{mmu.stats.lines_per_miss:.2f} lines/miss, "
              f"{superpage_hits} misses served by superpage PTEs")


if __name__ == "__main__":
    main()
