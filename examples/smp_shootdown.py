#!/usr/bin/env python
"""Multiprocessor page tables: shared walks and TLB shootdowns (§3.1).

Section 3.1 discusses page tables under multi-threaded operating systems.
This example runs a four-CPU system over one shared clustered page table:
each CPU translates its own reference stream, then the OS unmaps a buffer
— requiring a TLB shootdown — under both IPI-batching strategies, and
finally the bucket-lock accounting shows the clustered table's
once-per-block locking advantage over a hashed table for range
operations.

Run:  python examples/smp_shootdown.py
"""

import random

from repro import ClusteredPageTable, FullyAssociativeTLB, HashedPageTable
from repro.os.shootdown import SMPSystem
from repro.os.vm import VirtualMemoryManager


def run_smp(batch: bool) -> None:
    table = ClusteredPageTable()
    for vpn in range(0x1000, 0x1100):
        table.insert(vpn, vpn + 0x4000)
    smp = SMPSystem(
        table, lambda: FullyAssociativeTLB(64), ncpus=4,
        batch_range_shootdowns=batch,
    )
    rng = random.Random(3)
    for cpu in range(4):
        for _ in range(5_000):
            smp.translate(cpu, 0x1000 + rng.randrange(0x100))

    smp.unmap_range(0x1040, 64)  # tear down a 256 KB buffer

    label = "batched" if batch else "per-page"
    print(f"{label:9s}: shootdown rounds={smp.stats.shootdowns:3d}  "
          f"IPIs={smp.stats.ipis_sent:4d}  "
          f"entries invalidated={smp.stats.entries_invalidated:3d}  "
          f"total TLB misses={smp.total_tlb_misses()}")


def lock_comparison() -> None:
    print("\nbucket-lock acquisitions for a 64-page map+protect+unmap cycle:")
    for name, table in (
        ("clustered", ClusteredPageTable()),
        ("hashed   ", HashedPageTable()),
    ):
        vm = VirtualMemoryManager(table)
        vm.map_range(0x2000, 64)
        vm.protect_range(0x2000, 64, attrs=0x1)
        vm.unmap_range(0x2000, 64)
        print(f"  {name}: {vm.locks.stats.acquisitions:4d} acquisitions "
              f"({vm.page_table.stats.op_nodes_visited} nodes visited)")
    print(
        "\nClustered tables lock once per 16-page block (§3.1); hashed "
        "tables once per page — a 16x difference on range operations."
    )


def main() -> None:
    print("4 CPUs, shared clustered page table, 64-page unmap:\n")
    run_smp(batch=True)
    run_smp(batch=False)
    lock_comparison()


if __name__ == "__main__":
    main()
