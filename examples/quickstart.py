#!/usr/bin/env python
"""Quickstart: build a clustered page table and service TLB misses.

Builds the paper's base configuration — 64-bit addresses, 4 KB pages,
subblock factor 16, a 4096-bucket clustered page table, and a 64-entry
fully-associative TLB — maps a small program image, and translates a
burst of references, printing the metrics the paper's evaluation uses.

Run:  python examples/quickstart.py
"""

from repro import (
    AddressLayout,
    ClusteredPageTable,
    FullyAssociativeTLB,
    HashedPageTable,
    MMU,
)


def main() -> None:
    layout = AddressLayout()  # 64-bit VA, 4 KB pages, subblock factor 16
    print(f"address layout: {layout.describe()}")

    # A tiny program image: 8 pages of text, 48 pages of heap, 4 of stack.
    mappings = {}
    next_frame = 0x100
    for base, npages in [(0x0400, 8), (0x8000, 48), (0xFF000, 4)]:
        for i in range(npages):
            mappings[base + i] = next_frame
            next_frame += 1

    clustered = ClusteredPageTable(layout)
    hashed = HashedPageTable(layout)
    for vpn, ppn in mappings.items():
        clustered.insert(vpn, ppn)
        hashed.insert(vpn, ppn)

    print(f"\nmapped pages:        {len(mappings)}")
    print(f"clustered table:     {clustered.size_bytes()} bytes "
          f"({clustered.node_count} nodes)")
    print(f"hashed table:        {hashed.size_bytes()} bytes "
          f"({hashed.node_count} nodes)")

    # Drive the MMU over a strided reference pattern.
    mmu = MMU(FullyAssociativeTLB(entries=64), clustered)
    heap = [0x8000 + (i * 7) % 48 for i in range(10_000)]
    for vpn in heap:
        ppn = mmu.translate(vpn)
    assert ppn == mappings[heap[-1]]

    stats = mmu.stats
    print(f"\nreferences:          {stats.accesses}")
    print(f"TLB misses:          {stats.tlb_misses} "
          f"(miss ratio {stats.miss_ratio:.4f})")
    print(f"cache lines / miss:  {stats.lines_per_miss:.3f} "
          "(the paper's Figure 11 metric)")

    # One lookup, dissected.
    result = clustered.lookup(0x8005)
    print(f"\nlookup(0x8005): PPN {result.ppn:#x}, kind {result.kind.name}, "
          f"covers {result.npages} page(s), "
          f"{result.cache_lines} cache line(s), {result.probes} probe(s)")


if __name__ == "__main__":
    main()
