#!/usr/bin/env python
"""Page tables as real bytes, and the cache behaviour the paper predicted.

Serialises a clustered page table into its exact memory image —
Figure 1/6/7 PTE encodings, tags, next pointers, bucket array —
translates by reading raw bytes the way a miss handler would, then runs
the §6.1 experiment the paper couldn't: replaying a miss stream through a
*real* L2 cache to show smaller tables caching better.

Run:  python examples/memory_image.py
"""

from repro import ClusteredPageTable, HashedPageTable, load_workload
from repro.mmu.cache_sim import CacheSim
from repro.os.translation_map import TranslationMap
from repro.pagetables.memimage import MemoryImage


def hexdump(data: bytes, offset: int, rows: int = 3) -> None:
    for row in range(rows):
        base = offset + row * 16
        chunk = data[base:base + 16]
        text = " ".join(f"{b:02x}" for b in chunk)
        print(f"  {base:06x}  {text}")


def main() -> None:
    table = ClusteredPageTable(num_buckets=64)
    for i in range(16):
        table.insert(0x1000 + i, 0x400 + i)
    table.insert_superpage(0x2000, 16, 0x800)
    table.insert_partial_subblock(0x300, 0b1011, 0xC00)

    image = MemoryImage.of_clustered(table)
    print(f"image: {image.total_bytes()} bytes total, "
          f"{image.payload_bytes()} bytes of live PTEs "
          f"(== table.size_bytes() = {table.size_bytes()})")

    # Find and dump the superpage node's bytes.
    bucket = image.hash_fn(table.layout.vpbn(0x2000), image.num_buckets)
    print(f"\nsuperpage node at bucket {bucket}:")
    hexdump(image.data, bucket * image.node_bytes)

    ppn, attrs = image.walk(0x2005)
    print(f"\nwalk(0x2005) over raw bytes -> PPN {ppn:#x}, attrs {attrs:#x}")
    _, reads = image.walk_reads(0x2005)
    print(f"bytes read during the walk: {reads}")

    # The §6.1 experiment: lines *missed* in a real L2 vs lines touched.
    print("\nreal-cache study on the mp3d miss stream "
          "(64 KB L2, 8 KB pollution between misses):")
    workload = load_workload("mp3d", trace_length=60_000)
    tmap = TranslationMap.from_space(workload.union_space())
    from repro.mmu.simulate import collect_misses
    from repro.mmu.tlb import FullyAssociativeTLB

    stream = collect_misses(workload.trace, FullyAssociativeTLB(64), tmap)
    for label, build in (
        ("hashed   ", lambda: HashedPageTable(workload.layout)),
        ("clustered", lambda: ClusteredPageTable(workload.layout)),
    ):
        pt = build()
        tmap.populate(pt, base_pages_only=True)
        img = (MemoryImage.of_hashed(pt) if label.startswith("hashed")
               else MemoryImage.of_clustered(pt))
        cache = CacheSim(size_bytes=64 << 10, line_size=256)
        missed = 0
        for vpn in stream.vpns.tolist()[:8000]:
            cache.pollute(8 << 10)
            _, walk_reads = img.walk_reads(int(vpn))
            for address, nbytes in walk_reads:
                missed += cache.access(address, nbytes)
        print(f"  {label} table {pt.size_bytes():7,d} B -> "
              f"{missed / 8000:.3f} L2 lines *missed* per TLB miss")


if __name__ == "__main__":
    main()
