#!/usr/bin/env python
"""Closed-loop demand paging over a clustered page table.

Everything in one running system: the MMU takes TLB misses against a
clustered page table, sets referenced/modified bits lock-free (§3.1),
demand faults map pages through the reservation allocator, and under
memory pressure a clock sweep uses those referenced bits to pick victims
— writing back dirty pages and shooting down their TLB entries.

Run:  python examples/demand_paging.py
"""

import random

from repro import ClusteredPageTable, FullyAssociativeTLB
from repro.os.paging import ClockPager


def phase(pager: ClockPager, name: str, pages: range, refs: int,
          write_ratio: float, rng: random.Random) -> None:
    page_list = list(pages)
    for i in range(refs):
        vpn = page_list[rng.randrange(len(page_list))]
        pager.access(vpn, write=rng.random() < write_ratio)
    s = pager.stats
    print(f"{name:22s} resident={pager.resident_pages:3d}  "
          f"faults={s.demand_faults:5d}  evictions={s.evictions:5d}  "
          f"writebacks={s.writebacks:4d}  "
          f"second-chances={s.second_chances:5d}  "
          f"dirty-traps={pager.mmu.stats.dirty_traps:4d}")


def main() -> None:
    pager = ClockPager(
        ClusteredPageTable(), FullyAssociativeTLB(64), frames=96
    )
    rng = random.Random(42)
    print(pager.describe(), "\n")

    phase(pager, "warm-up (fits)", range(0x1000, 0x1050), 20_000, 0.2, rng)
    phase(pager, "read-heavy overflow", range(0x2000, 0x20A0), 30_000, 0.05, rng)
    phase(pager, "write-heavy overflow", range(0x3000, 0x30A0), 30_000, 0.6, rng)
    phase(pager, "return to warm set", range(0x1000, 0x1050), 20_000, 0.2, rng)

    pager.vm.check_consistency()
    print(
        f"\npage table after churn: {pager.vm.page_table.size_bytes()} bytes "
        f"for {pager.resident_pages} resident pages; "
        "page table, address space, and TLB verified consistent."
    )


if __name__ == "__main__":
    main()
