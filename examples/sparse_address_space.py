#!/usr/bin/env python
"""Sparse 64-bit address spaces: where page-table designs diverge (§2–§3).

Emulates the address space the paper says 64-bit programs will have —
objects "scattered anywhere in the address space", "bursty and not
arbitrarily sparse" — and sizes every page table over the same snapshot.
Linear tables pay a 4 KB page per touched 2 MB region; hashed tables pay
24 bytes per page regardless; clustered tables pay one node per touched
64 KB block, the sweet spot the paper identifies.

Run:  python examples/sparse_address_space.py
"""

import random

from repro import (
    AddressLayout,
    AddressSpace,
    ClusteredPageTable,
    ForwardMappedPageTable,
    HashedPageTable,
    LinearPageTable,
    VariableClusteredPageTable,
)


def build_sparse_space(layout: AddressLayout, objects: int, seed: int = 42
                       ) -> AddressSpace:
    """Scatter medium-sized objects across the full 64-bit space."""
    rng = random.Random(seed)
    space = AddressSpace(layout, "sparse-64bit")
    next_frame = 0
    for _ in range(objects):
        # Objects are 1-24 pages, placed anywhere in the 52-bit VPN space.
        npages = rng.randint(1, 24)
        base = rng.randrange(0, layout.max_vpn - 32)
        for i in range(npages):
            if not space.is_mapped(base + i):
                space.map(base + i, next_frame)
                next_frame += 1
    return space


def main() -> None:
    layout = AddressLayout()
    space = build_sparse_space(layout, objects=400)
    pages = len(space)
    blocks = space.nactive(layout.subblock_factor)
    print(f"sparse space: {pages} pages in {blocks} page blocks "
          f"({space.nactive(512)} touched 2MB regions), "
          f"mean block population {space.mean_block_population():.1f}")

    tables = [
        ("linear-6lvl", LinearPageTable(layout, structure="multilevel")),
        ("linear-1lvl", LinearPageTable(layout, structure="ideal")),
        ("linear-hashed", LinearPageTable(layout, structure="hashed")),
        ("forward-mapped", ForwardMappedPageTable(layout)),
        ("hashed", HashedPageTable(layout)),
        ("hashed-packed", HashedPageTable(layout, packed=True)),
        ("clustered", ClusteredPageTable(layout)),
        ("variable-clustered", VariableClusteredPageTable(layout)),
    ]
    print(f"\n{'page table':20s} {'bytes':>12s} {'bytes/page':>11s}")
    for name, table in tables:
        for vpn, mapping in space.items():
            table.insert(vpn, mapping.ppn, mapping.attrs)
        size = table.size_bytes()
        print(f"{name:20s} {size:12,d} {size / pages:11.1f}")

    print(
        "\nExpect: the 6-level linear tree pays for sparse upper levels; "
        "hashed is a flat 24 B/page; clustered beats hashed whenever "
        "blocks average >2.7 pages; the variable-factor table recovers "
        "the loss on nearly-empty blocks."
    )


if __name__ == "__main__":
    main()
