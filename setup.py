"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` on machines
where PEP 517 editable builds are unavailable (e.g. offline hosts missing
the ``wheel`` distribution).
"""

from setuptools import setup

setup()
