"""The workload calibration audit."""

import pytest

from repro.workloads.suite import PAPER_WORKLOADS
from repro.workloads.validation import (
    CalibrationCheck,
    audit,
    check_workload,
    implied_miss_ratio,
    report,
)


class TestImpliedMissRatio:
    def test_inverts_time_model(self):
        # 50% time at 40-cycle penalty, 30 cycles/ref -> 0.75 misses/ref.
        assert implied_miss_ratio(50) == pytest.approx(0.75)
        assert implied_miss_ratio(21) == pytest.approx(0.19937, rel=1e-3)

    def test_zero_has_no_target(self):
        assert implied_miss_ratio(0) is None


class TestAudit:
    @pytest.mark.parametrize("name", ["coral", "gcc", "kernel"])
    def test_representative_workloads_pass(self, name):
        check = check_workload(name, trace_length=30_000)
        assert check.ok, check.problems

    def test_full_audit_passes(self):
        checks = audit(trace_length=30_000)
        failures = {
            name: check.problems
            for name, check in checks.items() if not check.ok
        }
        assert not failures, failures

    def test_kernel_skips_miss_check(self):
        check = check_workload("kernel")
        assert check.miss_ratio is None
        assert check.target_miss_ratio is None

    def test_report_has_row_per_workload(self):
        checks = audit(names=("mp3d", "gcc"), trace_length=20_000)
        result = report(checks)
        assert {row[0] for row in result.rows} == {"mp3d", "gcc"}
        assert all(row[-1] == "ok" for row in result.rows)

    def test_bursty_workloads_sit_inside_the_band(self):
        # spice and pthor are the paper's bursty spaces; before the band
        # existed they could drift anywhere in the dense/sparse overlap
        # without the audit noticing.
        for name in ("spice", "pthor"):
            check = check_workload(name, trace_length=20_000)
            assert check.density_class == "bursty"
            assert 0.25 <= check.region_density < 0.90, name

    def test_detects_densified_bursty_workload(self):
        # Fill every populated 512-page region of spice completely: still
        # "bursty" by label, fully dense in fact — the audit must object.
        from repro.workloads.suite import load_workload

        workload = load_workload("spice", with_trace=False)
        for space in workload.spaces:
            regions = {vpn // 512 for vpn in space}
            for region in regions:
                for vpn in range(region * 512, (region + 1) * 512):
                    if not space.is_mapped(vpn):
                        space.map(vpn, vpn)
        check = check_workload("spice", workload=workload)
        assert not check.ok
        assert any("bursty" in problem for problem in check.problems)

    def test_detects_footprint_drift(self):
        # Manufacture a drifted check via an undersized fake workload.
        from repro.workloads.suite import load_workload

        workload = load_workload("mp3d", with_trace=False)
        workload.spaces[0].unmap(next(iter(workload.spaces[0])))
        for vpn in list(workload.spaces[0])[: len(workload.spaces[0]) // 2]:
            workload.spaces[0].unmap(vpn)
        check = check_workload("mp3d", workload=workload)
        assert not check.ok
        assert any("footprint" in problem for problem in check.problems)
