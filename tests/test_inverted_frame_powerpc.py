"""Frame-indexed inverted tables and the PowerPC PTEG table (§2 variants)."""

import random

import pytest

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError, MappingExistsError, PageFaultError
from repro.pagetables.inverted import (
    ANCHOR_BYTES,
    FRAME_ENTRY_BYTES,
    FrameInvertedPageTable,
)
from repro.pagetables.powerpc import PTEG_SLOTS, SLOT_BYTES, PowerPCPageTable
from repro.pagetables.pte import ATTR_REFERENCED


class TestFrameInverted:
    def make(self, layout, frames=256, anchors=32):
        return FrameInvertedPageTable(
            layout, total_frames=frames, num_anchors=anchors
        )

    def test_insert_lookup(self, layout):
        table = self.make(layout)
        table.insert(0x123, 7)
        result = table.lookup(0x123)
        assert result.ppn == 7
        assert result.cache_lines == 2  # anchor + frame entry

    def test_frame_slot_conflict_rejected(self, layout):
        # One frame backs one page: the inverted table's defining limit.
        table = self.make(layout)
        table.insert(0x100, 5)
        with pytest.raises(MappingExistsError):
            table.insert(0x200, 5)

    def test_double_map_rejected(self, layout):
        table = self.make(layout)
        table.insert(0x100, 5)
        with pytest.raises(MappingExistsError):
            table.insert(0x100, 6)

    def test_out_of_range_frame_rejected(self, layout):
        with pytest.raises(ConfigurationError):
            self.make(layout, frames=16).insert(0x1, 16)

    def test_size_independent_of_population(self, layout):
        table = self.make(layout, frames=128, anchors=16)
        empty_size = table.size_bytes()
        for i in range(50):
            table.insert(0x1000 + i, i)
        assert table.size_bytes() == empty_size
        assert empty_size == 16 * ANCHOR_BYTES + 128 * FRAME_ENTRY_BYTES

    def test_chain_walk_cost(self, layout):
        table = FrameInvertedPageTable(
            layout, total_frames=64, num_anchors=8,
            hash_fn=lambda vpn, anchors: 0,
        )
        table.insert(0x100, 1)
        table.insert(0x200, 2)
        # 0x200 is at the chain head (LIFO insert), 0x100 behind it.
        assert table.lookup(0x200).cache_lines == 2
        assert table.lookup(0x100).cache_lines == 3

    def test_remove_relinks_chain(self, layout):
        table = FrameInvertedPageTable(
            layout, total_frames=64, num_anchors=8,
            hash_fn=lambda vpn, anchors: 0,
        )
        for i, vpn in enumerate((0x100, 0x200, 0x300)):
            table.insert(vpn, i)
        table.remove(0x200)  # middle of the chain
        assert table.lookup(0x100).ppn == 0
        assert table.lookup(0x300).ppn == 2
        with pytest.raises(PageFaultError):
            table.lookup(0x200)

    def test_mark(self, layout):
        table = self.make(layout)
        table.insert(0x100, 5, attrs=0x3)
        assert table.mark(0x100, set_bits=ATTR_REFERENCED) & ATTR_REFERENCED
        assert table.lookup(0x100).attrs & ATTR_REFERENCED

    def test_mapped_count(self, layout):
        table = self.make(layout)
        table.insert(0x100, 5)
        table.insert(0x200, 6)
        table.remove(0x100)
        assert table.mapped_count == 1

    def test_oracle_equivalence(self, layout):
        rng = random.Random(4)
        table = self.make(layout, frames=512, anchors=16)
        reference = {}
        free = list(range(512))
        for _ in range(300):
            vpn = rng.randrange(4096)
            if vpn in reference:
                table.remove(vpn)
                free.append(reference.pop(vpn))
            else:
                ppn = free.pop()
                table.insert(vpn, ppn)
                reference[vpn] = ppn
        for vpn, ppn in reference.items():
            assert table.lookup(vpn).ppn == ppn


class TestPowerPC:
    def test_insert_lookup_primary(self, layout):
        table = PowerPCPageTable(layout, num_groups=64)
        table.insert(0x123, 0x456)
        result = table.lookup(0x123)
        assert result.ppn == 0x456
        assert result.cache_lines == 1  # primary PTEG, one line at 256B

    def test_spill_to_secondary(self, layout):
        table = PowerPCPageTable(
            layout, num_groups=64, hash_fn=lambda vpn, groups: 5
        )
        for i in range(PTEG_SLOTS):
            table.insert(i * 64, i)
        table.insert(0x999 * 64, 0x99)  # primary full -> secondary
        result = table.lookup(0x999 * 64)
        assert result.ppn == 0x99
        assert result.cache_lines == 2  # probed both groups
        assert table.secondary_fraction() > 0

    def test_overflow_when_both_full(self, layout):
        table = PowerPCPageTable(
            layout, num_groups=64, hash_fn=lambda vpn, groups: 5
        )
        for i in range(2 * PTEG_SLOTS + 3):
            table.insert(i * 64, i)
        assert table.overflow_inserts == 3
        # The overflowed PTEs are still found (after both PTEG probes).
        result = table.lookup((2 * PTEG_SLOTS) * 64)
        assert result.ppn == 2 * PTEG_SLOTS
        assert result.cache_lines >= 3

    def test_duplicate_rejected(self, layout):
        table = PowerPCPageTable(layout, num_groups=64)
        table.insert(1, 1)
        with pytest.raises(MappingExistsError):
            table.insert(1, 2)

    def test_remove_everywhere(self, layout):
        table = PowerPCPageTable(
            layout, num_groups=64, hash_fn=lambda vpn, groups: 5
        )
        for i in range(2 * PTEG_SLOTS + 1):
            table.insert(i * 64, i)
        table.remove(0)                      # primary
        table.remove(PTEG_SLOTS * 64)        # secondary
        table.remove((2 * PTEG_SLOTS) * 64)  # overflow
        for vpn in (0, PTEG_SLOTS * 64, (2 * PTEG_SLOTS) * 64):
            with pytest.raises(PageFaultError):
                table.lookup(vpn)

    def test_remove_missing_faults(self, layout):
        with pytest.raises(PageFaultError):
            PowerPCPageTable(layout, num_groups=64).remove(42)

    def test_mark_in_pteg_and_overflow(self, layout):
        table = PowerPCPageTable(
            layout, num_groups=64, hash_fn=lambda vpn, groups: 5
        )
        for i in range(2 * PTEG_SLOTS + 1):
            table.insert(i * 64, i)
        assert table.mark(0, set_bits=ATTR_REFERENCED) & ATTR_REFERENCED
        overflowed = (2 * PTEG_SLOTS) * 64
        assert table.mark(overflowed, set_bits=ATTR_REFERENCED) & ATTR_REFERENCED

    def test_size_preallocated(self, layout):
        table = PowerPCPageTable(layout, num_groups=64)
        assert table.size_bytes() == 64 * PTEG_SLOTS * SLOT_BYTES
        table.insert(1, 1)
        assert table.size_bytes() == 64 * PTEG_SLOTS * SLOT_BYTES

    def test_group_scan_spans_two_small_lines(self, layout):
        from repro.mmu.cache_model import CacheModel

        table = PowerPCPageTable(layout, CacheModel(64), num_groups=64)
        table.insert(0x123, 0x456)
        assert table.lookup(0x123).cache_lines == 2  # 128B PTEG / 64B lines

    def test_occupancy(self, layout):
        table = PowerPCPageTable(layout, num_groups=64)
        for i in range(32):
            table.insert(i * 977, i)
        assert table.occupancy() == pytest.approx(32 / (64 * PTEG_SLOTS))

    def test_rejects_non_power_of_two_groups(self, layout):
        with pytest.raises(ConfigurationError):
            PowerPCPageTable(layout, num_groups=48)

    def test_oracle_equivalence(self, layout):
        rng = random.Random(6)
        table = PowerPCPageTable(layout, num_groups=32)
        reference = {}
        for _ in range(400):
            vpn = rng.randrange(2048)
            if vpn in reference:
                table.remove(vpn)
                del reference[vpn]
            else:
                table.insert(vpn, vpn + 7)
                reference[vpn] = vpn + 7
        for vpn, ppn in reference.items():
            assert table.lookup(vpn).ppn == ppn
