"""Analysis helpers: table builders, normalisation, text rendering."""

import pytest

from repro.analysis.metrics import (
    STANDARD_TABLES,
    build_standard_tables,
    make_table,
    normalised_sizes,
    table_sizes,
)
from repro.analysis.report import render_table
from repro.errors import ConfigurationError
from repro.os.promotion import DynamicPageSizePolicy
from repro.os.translation_map import TranslationMap
from repro.pagetables.strategies import MultiplePageTables


class TestMakeTable:
    @pytest.mark.parametrize("name", sorted(STANDARD_TABLES))
    def test_standard_names_construct(self, name):
        table = make_table(name)
        assert table.size_bytes() >= 0

    def test_hashed_multi_composition(self):
        table = make_table("hashed-multi")
        assert isinstance(table, MultiplePageTables)
        assert [getattr(t, "grain", 1) for t in table.tables] == [1, 16]

    def test_hashed_multi_reversed_order(self):
        table = make_table("hashed-multi-reversed")
        assert [getattr(t, "grain", 1) for t in table.tables] == [16, 1]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_table("btree")


class TestBuildAndSizes:
    def test_build_populates_all(self, dense_space):
        tmap = TranslationMap.from_space(dense_space)
        tables = build_standard_tables(tmap)
        assert set(tables) == set(STANDARD_TABLES)
        for table in tables.values():
            assert table.lookup(0x10000).ppn == 0x4000

    def test_table_sizes_sums_processes(self, dense_space):
        single = table_sizes([dense_space])
        double = table_sizes([dense_space, dense_space.copy()])
        for name in single:
            assert double[name] == 2 * single[name]

    def test_table_sizes_with_policy_shrinks_clustered(self, dense_space):
        base = table_sizes([dense_space], names=["clustered", "hashed-multi"])
        wide = table_sizes(
            [dense_space], names=["clustered", "hashed-multi"],
            policy=DynamicPageSizePolicy(), base_pages_only=False,
        )
        assert wide["clustered"] < base["clustered"]
        assert wide["hashed-multi"] < base["hashed-multi"]

    def test_normalised_sizes(self):
        norm = normalised_sizes({"hashed": 100, "clustered": 40}, "hashed")
        assert norm == {"hashed": 1.0, "clustered": 0.4}

    def test_normalised_requires_reference(self):
        with pytest.raises(ConfigurationError):
            normalised_sizes({"a": 1}, "hashed")

    def test_normalised_rejects_zero_reference(self):
        with pytest.raises(ConfigurationError):
            normalised_sizes({"hashed": 0}, "hashed")


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"], [["a", 1.5], ["long-name", 20]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text and "1.50" in text

    def test_none_renders_dash(self):
        text = render_table(["a", "b"], [["x", None]])
        assert "-" in text.splitlines()[-1]

    def test_precision(self):
        text = render_table(["a", "b"], [["x", 1.23456]], precision=4)
        assert "1.2346" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text
