"""Two-level TLB hierarchies."""

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import ConfigurationError
from repro.mmu.mmu import MMU
from repro.mmu.subblock_tlb import CompleteSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB, TLBEntry
from repro.mmu.two_level import TwoLevelTLB
from repro.pagetables.pte import PTEKind


def base_entry(vpn, ppn):
    return TLBEntry(base_vpn=vpn, npages=1, base_ppn=ppn, attrs=0,
                    valid_mask=1, kind=PTEKind.BASE)


def superpage_entry(base_vpn, npages, base_ppn):
    return TLBEntry(base_vpn=base_vpn, npages=npages, base_ppn=base_ppn,
                    attrs=0, valid_mask=(1 << npages) - 1,
                    kind=PTEKind.SUPERPAGE)


class TestHierarchy:
    def make(self, l1=4, l2=16):
        return TwoLevelTLB(FullyAssociativeTLB(l1), FullyAssociativeTLB(l2))

    def test_fill_lands_in_both_levels(self):
        tlb = self.make()
        tlb.fill(base_entry(1, 2))
        assert tlb.level1.peek(1) is not None
        assert tlb.level2.peek(1) is not None

    def test_l2_hit_promotes_to_l1(self):
        tlb = self.make(l1=2, l2=16)
        for vpn in range(5):
            tlb.fill(base_entry(vpn, vpn))
        # VPN 0 was evicted from the 2-entry L1 but survives in L2.
        assert tlb.level1.peek(0) is None
        assert tlb.lookup(0) is not None
        assert tlb.l2_promotions == 1
        assert tlb.level1.peek(0) is not None

    def test_miss_in_both_counts_once(self):
        tlb = self.make()
        assert tlb.lookup(99) is None
        assert tlb.stats.misses == 1

    def test_invalidate_reaches_both(self):
        tlb = self.make()
        tlb.fill(base_entry(7, 8))
        assert tlb.invalidate(7) == 2
        assert tlb.lookup(7) is None

    def test_flush_clears_both(self):
        tlb = self.make()
        tlb.fill(base_entry(1, 1))
        tlb.flush()
        assert len(tlb) == 0

    def test_capacity_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            TwoLevelTLB(FullyAssociativeTLB(16), FullyAssociativeTLB(4))

    def test_complete_subblock_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoLevelTLB(FullyAssociativeTLB(4), CompleteSubblockTLB(16))


class TestFormatDowngrades:
    def test_superpage_l2_with_single_page_l1(self):
        tlb = TwoLevelTLB(
            FullyAssociativeTLB(4), SuperpageTLB(16, page_sizes=(1, 16))
        )
        tlb.fill(superpage_entry(0x100, 16, 0x400))
        # The superpage lives in L2 only; L1 cannot hold it.
        assert tlb.level2.peek(0x105) is not None
        assert tlb.level1.peek(0x105) is None
        # An access promotes a single-page downgrade into L1.
        entry = tlb.lookup(0x105)
        assert entry.ppn_for(0x105) == 0x405
        promoted = tlb.level1.peek(0x105)
        assert promoted is not None and promoted.npages == 1

    def test_supported_sizes_follow_l2(self):
        tlb = TwoLevelTLB(
            FullyAssociativeTLB(4), SuperpageTLB(16, page_sizes=(1, 16))
        )
        assert tuple(tlb.supported_sizes) == (1, 16)
        assert tlb.accepts(PTEKind.SUPERPAGE, 16)


class TestWithMMU:
    def test_end_to_end_with_clustered_table(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        for i in range(32):
            table.insert(0x200 + i, 0x800 + i)
        tlb = TwoLevelTLB(
            FullyAssociativeTLB(4), SuperpageTLB(64, page_sizes=(1, 16))
        )
        mmu = MMU(tlb, table)
        for vpn in list(range(0x100, 0x110)) + list(range(0x200, 0x220)):
            assert mmu.translate(vpn) == table.lookup(vpn).ppn
        # The superpage covered its block with one miss.
        assert mmu.stats.misses_by_kind[PTEKind.SUPERPAGE] == 1

    def test_l2_reduces_walks(self, layout):
        table = ClusteredPageTable(layout)
        for i in range(64):
            table.insert(0x100 + i, 0x400 + i)
        small = MMU(FullyAssociativeTLB(8), table)
        layered = MMU(
            TwoLevelTLB(FullyAssociativeTLB(8), FullyAssociativeTLB(128)),
            ClusteredPageTable(layout),
        )
        for i in range(64):
            layered.page_table.insert(0x100 + i, 0x400 + i)
        trace = [0x100 + (i * 7) % 64 for i in range(2000)]
        for vpn in trace:
            small.translate(vpn)
            layered.translate(vpn)
        assert layered.stats.tlb_misses < small.stats.tlb_misses
