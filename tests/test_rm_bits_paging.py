"""Reference/modified bits and demand paging with clock eviction."""

import random

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import ConfigurationError, PageFaultError
from repro.mmu.mmu import MMU
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.paging import ClockPager
from repro.pagetables.forward import ForwardMappedPageTable
from repro.pagetables.guarded import GuardedPageTable
from repro.pagetables.hashed import HashedPageTable, SuperpageIndexHashedPageTable
from repro.pagetables.linear import LinearPageTable
from repro.pagetables.pte import ATTR_MODIFIED, ATTR_REFERENCED
from repro.pagetables.strategies import MultiplePageTables


TABLES_WITH_MARK = [
    lambda l: ClusteredPageTable(l),
    lambda l: HashedPageTable(l),
    lambda l: SuperpageIndexHashedPageTable(l),
    lambda l: LinearPageTable(l),
    lambda l: ForwardMappedPageTable(l),
    lambda l: GuardedPageTable(l),
]


class TestMark:
    @pytest.mark.parametrize("factory", TABLES_WITH_MARK,
                             ids=lambda f: type(f(AddressLayout())).__name__)
    def test_set_and_clear_bits(self, layout, factory):
        table = factory(layout)
        table.insert(0x100, 0x400, attrs=0x3)
        new = table.mark(0x100, set_bits=ATTR_REFERENCED)
        assert new & ATTR_REFERENCED
        assert table.lookup(0x100).attrs == new
        cleared = table.mark(0x100, clear_bits=ATTR_REFERENCED)
        assert not cleared & ATTR_REFERENCED
        assert cleared & 0x3  # original bits survive

    @pytest.mark.parametrize("factory", TABLES_WITH_MARK,
                             ids=lambda f: type(f(AddressLayout())).__name__)
    def test_mark_unmapped_faults(self, layout, factory):
        with pytest.raises(PageFaultError):
            factory(layout).mark(0x42, set_bits=1)

    def test_clustered_wide_pte_shares_attrs(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400, attrs=0x3)
        table.mark(0x105, set_bits=ATTR_MODIFIED)
        # One attribute field for the whole superpage.
        assert table.lookup(0x10F).attrs & ATTR_MODIFIED

    def test_replicated_wide_pte_updates_every_site(self, layout):
        table = LinearPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400, attrs=0x3)
        visited_before = table.stats.op_nodes_visited
        table.mark(0x105, set_bits=ATTR_MODIFIED)
        # §4.3: replica updates touch all sixteen sites.
        assert table.stats.op_nodes_visited - visited_before >= 16
        for off in (0, 7, 15):
            assert table.lookup(0x100 + off).attrs & ATTR_MODIFIED

    def test_multiple_tables_route_mark(self, layout):
        multi = MultiplePageTables(
            [HashedPageTable(layout), HashedPageTable(layout, grain=16)]
        )
        multi.insert_superpage(0x100, 16, 0x400)
        assert multi.mark(0x105, set_bits=ATTR_REFERENCED) & ATTR_REFERENCED


class TestMMURMBits:
    def test_miss_sets_referenced(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=0x3)
        mmu = MMU(FullyAssociativeTLB(4), table, maintain_rm_bits=True)
        mmu.translate(0x100)
        assert table.lookup(0x100).attrs & ATTR_REFERENCED

    def test_write_miss_sets_modified(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=0x3)
        mmu = MMU(FullyAssociativeTLB(4), table, maintain_rm_bits=True)
        mmu.translate(0x100, write=True)
        assert table.lookup(0x100).attrs & ATTR_MODIFIED

    def test_dirty_trap_on_first_write_hit(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=0x3)
        mmu = MMU(FullyAssociativeTLB(4), table, maintain_rm_bits=True)
        mmu.translate(0x100)               # read miss: clean entry
        mmu.translate(0x100, write=True)   # write hit: dirty trap
        mmu.translate(0x100, write=True)   # already dirty: no trap
        assert mmu.stats.dirty_traps == 1
        assert table.lookup(0x100).attrs & ATTR_MODIFIED

    def test_disabled_by_default(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=0x3)
        mmu = MMU(FullyAssociativeTLB(4), table)
        mmu.translate(0x100, write=True)
        assert not table.lookup(0x100).attrs & ATTR_MODIFIED
        assert mmu.stats.dirty_traps == 0


class TestClockPager:
    def test_faults_map_on_demand(self, layout):
        pager = ClockPager(ClusteredPageTable(layout),
                           FullyAssociativeTLB(16), frames=64)
        assert pager.access(0x100) == pager.vm.space.translate(0x100).ppn
        assert pager.stats.demand_faults == 1
        assert pager.resident_pages == 1

    def test_no_eviction_within_budget(self, layout):
        pager = ClockPager(ClusteredPageTable(layout),
                           FullyAssociativeTLB(16), frames=64)
        for vpn in range(0x100, 0x100 + 48):
            pager.access(vpn)
        assert pager.stats.evictions == 0

    def test_eviction_under_pressure(self, layout):
        pager = ClockPager(ClusteredPageTable(layout),
                           FullyAssociativeTLB(16), frames=32)
        for vpn in range(0x100, 0x100 + 80):
            pager.access(vpn)
        assert pager.stats.evictions >= 80 - 32
        assert pager.resident_pages <= 32

    def test_writebacks_only_for_dirty_pages(self, layout):
        pager = ClockPager(ClusteredPageTable(layout),
                           FullyAssociativeTLB(16), frames=32)
        for vpn in range(0x100, 0x100 + 64):
            pager.access(vpn, write=False)
        assert pager.stats.writebacks == 0
        for vpn in range(0x200, 0x200 + 64):
            pager.access(vpn, write=True)
        assert pager.stats.writebacks > 0

    def test_second_chance_protects_hot_pages(self, layout):
        pager = ClockPager(ClusteredPageTable(layout),
                           FullyAssociativeTLB(16), frames=32)
        hot = list(range(0x100, 0x110))
        rng = random.Random(5)
        for i in range(4_000):
            pager.access(hot[i % len(hot)])
            if i % 2:
                pager.access(0x1000 + rng.randrange(100))
        assert pager.stats.second_chances > 0
        # The hot set must still be resident.
        resident = set(pager._resident)
        assert set(hot) <= resident

    def test_reaccess_after_eviction_refaults(self, layout):
        pager = ClockPager(ClusteredPageTable(layout),
                           FullyAssociativeTLB(16), frames=32)
        for vpn in range(0x100, 0x100 + 64):
            pager.access(vpn)
        faults_before = pager.stats.demand_faults
        pager.access(0x100)  # long since evicted
        assert pager.stats.demand_faults == faults_before + 1

    def test_rejects_tiny_budget(self, layout):
        with pytest.raises(ConfigurationError):
            ClockPager(ClusteredPageTable(layout),
                       FullyAssociativeTLB(4), frames=4)

    def test_consistency_under_churn(self, layout):
        pager = ClockPager(ClusteredPageTable(layout),
                           FullyAssociativeTLB(16), frames=48)
        rng = random.Random(8)
        for i in range(5_000):
            pager.access(0x100 + rng.randrange(120), write=(i % 4 == 0))
        assert pager.vm.check_consistency() == pager.resident_pages