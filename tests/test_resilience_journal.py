"""The append-only run journal (`repro.resilience.journal`)."""

import json

from repro.resilience.journal import (
    JOURNAL_NAME,
    JOURNAL_VERSION,
    RunJournal,
    task_digest,
)


class TestTaskDigest:
    def test_stable_for_identical_inputs(self):
        assert task_digest("table1", 2_000, ("mp3d",)) == task_digest(
            "table1", 2_000, ("mp3d",)
        )

    def test_workload_order_is_canonicalised(self):
        assert task_digest("table1", 2_000, ("gcc", "mp3d")) == task_digest(
            "table1", 2_000, ("mp3d", "gcc")
        )

    def test_every_input_changes_the_digest(self):
        base = task_digest("table1", 2_000, ("mp3d",))
        assert task_digest("fig9", 2_000, ("mp3d",)) != base
        assert task_digest("table1", 3_000, ("mp3d",)) != base
        assert task_digest("table1", 2_000, ("gcc",)) != base
        assert task_digest("table1", 2_000, None) != base

    def test_folds_in_the_stream_schema_version(self, monkeypatch):
        import repro.cache.stream_cache as stream_cache

        base = task_digest("table1", 2_000)
        monkeypatch.setattr(stream_cache, "SCHEMA_VERSION", 999)
        assert task_digest("table1", 2_000) != base


class TestRunJournal:
    def test_header_written_once(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.ensure_header({"trace_length": 2_000})
        journal.ensure_header({"trace_length": 9_999})  # ignored: exists
        state = journal.load()
        assert state.header["version"] == JOURNAL_VERSION
        assert state.header["trace_length"] == 2_000

    def test_append_and_load_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.ensure_header({})
        digest = task_digest("table1", 2_000)
        result = {"experiment": "table1", "headers": ["a"], "rows": [[1]],
                  "notes": ""}
        journal.append_result("table1", digest, result, 0.25, attempts=2)
        state = journal.load()
        assert state.result_for("table1", digest) == result
        assert state.entries["table1"]["attempts"] == 2
        assert journal.completed_count() == 1

    def test_digest_mismatch_is_not_trusted(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append_result(
            "table1", task_digest("table1", 2_000), {"rows": []}, 0.1
        )
        state = journal.load()
        assert state.result_for("table1", task_digest("table1", 3_000)) is None

    def test_failures_are_recorded(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append_failure(
            {"experiment": "numa", "error_type": "OSError", "attempts": 3}
        )
        state = journal.load()
        assert state.failures == [
            {"experiment": "numa", "error_type": "OSError", "attempts": 3}
        ]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.ensure_header({})
        digest = task_digest("table1", 2_000)
        journal.append_result("table1", digest, {"rows": []}, 0.1)
        # simulate a SIGKILL mid-append: a half-written final record
        with journal.path.open("a") as handle:
            handle.write('{"entry": {"experiment": "fig9", "resu')
        state = journal.load()
        assert state.torn_lines == 1
        assert state.result_for("table1", digest) == {"rows": []}
        assert "fig9" not in state.entries

    def test_unknown_record_shapes_are_skipped(self, tmp_path):
        journal = RunJournal(tmp_path)
        with journal.path.open("w") as handle:
            handle.write('{"mystery": 1}\n')
            handle.write("[1, 2, 3]\n")
        state = journal.load()
        assert state.torn_lines == 2
        assert state.entries == {}

    def test_missing_journal_loads_empty(self, tmp_path):
        state = RunJournal(tmp_path / "never-created").load()
        assert state.entries == {} and state.torn_lines == 0

    def test_records_are_one_json_line_each(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.ensure_header({"jobs": 4})
        journal.append_result(
            "table1", task_digest("table1", 2_000), {"rows": []}, 0.1
        )
        lines = (tmp_path / JOURNAL_NAME).read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every line independently parseable
