"""The real cache simulator and the §6.1 caching-hypothesis study."""

import pytest

from repro.errors import ConfigurationError
from repro.mmu.cache_sim import CacheSim
from repro.pagetables.memimage import MemoryImage
from repro.pagetables.hashed import HashedPageTable
from repro.core.clustered import ClusteredPageTable


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        cache = CacheSim(size_bytes=4096, line_size=64, associativity=2)
        assert cache.access(0x100) == 1  # cold miss
        assert cache.access(0x100) == 0  # hit
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_access_spanning_lines(self):
        cache = CacheSim(size_bytes=4096, line_size=64, associativity=2)
        assert cache.access(60, nbytes=16) == 2  # straddles two lines

    def test_lru_within_set(self):
        # 2 sets x 1 way, 64B lines: lines 0 and 2 conflict (even lines).
        cache = CacheSim(size_bytes=128, line_size=64, associativity=1)
        cache.access(0)            # line 0
        cache.access(128)          # line 2 evicts line 0
        assert cache.access(0) == 1

    def test_capacity_bounds_residency(self):
        cache = CacheSim(size_bytes=1024, line_size=64, associativity=4)
        for address in range(0, 1 << 16, 64):
            cache.access(address)
        assert cache.resident_lines() <= 1024 // 64

    def test_pollute_evicts(self):
        cache = CacheSim(size_bytes=1024, line_size=64, associativity=4)
        cache.access(0x40)
        cache.pollute(1 << 14)  # 16 KB of unrelated traffic
        assert cache.access(0x40) == 1  # evicted

    def test_flush(self):
        cache = CacheSim(size_bytes=1024, line_size=64, associativity=4)
        cache.access(0)
        cache.flush()
        assert cache.resident_lines() == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheSim(size_bytes=1000, line_size=64, associativity=4)
        with pytest.raises(ConfigurationError):
            CacheSim(size_bytes=1024, line_size=48)

    def test_zero_byte_access_free(self):
        cache = CacheSim(size_bytes=1024, line_size=64, associativity=4)
        assert cache.access(0, nbytes=0) == 0
        assert cache.stats.accesses == 0


class TestWalkReads:
    def test_reads_match_walk_result(self, layout):
        table = HashedPageTable(layout, num_buckets=32)
        table.insert(0x123, 0x456)
        image = MemoryImage.of_hashed(table)
        result, reads = image.walk_reads(0x123)
        assert result == (0x456, table.lookup(0x123).attrs)
        assert len(reads) == 2  # tag+next, then the mapping word

    def test_fault_still_reports_reads(self, layout):
        table = HashedPageTable(layout, num_buckets=32)
        image = MemoryImage.of_hashed(table)
        result, reads = image.walk_reads(0x99)
        assert result is None
        assert len(reads) == 1  # the (empty) bucket head

    def test_clustered_far_slot_read_offset(self, layout):
        table = ClusteredPageTable(layout, num_buckets=32)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        image = MemoryImage.of_clustered(table)
        _, reads = image.walk_reads(0x10F)
        mapping_read = reads[-1]
        assert mapping_read[0] % image.node_bytes == 16 + 8 * 15


class TestCachesimExperiment:
    def test_clustered_misses_less(self):
        from repro.experiments.cachesim import run

        result = run(workloads=("mp3d",), trace_length=30_000)
        row = result.by_label()["mp3d"]
        headers = result.headers[1:]
        data = dict(zip(headers, row))
        # The §6.1 prediction: fewer real misses for the smaller table.
        assert data["clustered missed"] < data["hashed missed"]
        # And both missed counts sit below the touched counts.
        assert data["hashed missed"] < data["hashed touched"]
        assert data["clustered missed"] < data["clustered touched"]
