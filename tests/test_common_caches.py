"""The experiment harness's memoization layer."""

import numpy as np

from repro.experiments import common


class TestMemoization:
    def setup_method(self):
        common.clear_caches()

    def teardown_method(self):
        common.clear_caches()

    def test_workload_identity(self):
        a = common.get_workload("mp3d", 5_000)
        b = common.get_workload("mp3d", 5_000)
        assert a is b

    def test_distinct_lengths_distinct_workloads(self):
        a = common.get_workload("mp3d", 5_000)
        b = common.get_workload("mp3d", 6_000)
        assert a is not b

    def test_translation_map_identity_per_policy(self):
        workload = common.get_workload("mp3d", 5_000)
        assert common.get_translation_map(workload, "single") is (
            common.get_translation_map(workload, "single")
        )
        assert common.get_translation_map(workload, "single") is not (
            common.get_translation_map(workload, "superpage")
        )

    def test_miss_stream_identity_per_config(self):
        workload = common.get_workload("mp3d", 5_000)
        a = common.get_miss_stream(workload, "single", 64)
        b = common.get_miss_stream(workload, "single", 64)
        c = common.get_miss_stream(workload, "single", 56)
        assert a is b
        assert a is not c
        assert c.misses >= a.misses  # fewer entries, no fewer misses

    def test_clear_caches_resets(self):
        a = common.get_workload("mp3d", 5_000)
        common.clear_caches()
        b = common.get_workload("mp3d", 5_000)
        assert a is not b
        assert np.array_equal(a.trace.vpns, b.trace.vpns)  # deterministic

    def test_policy_for_mapping(self):
        assert common.policy_for("single") is None
        assert common.policy_for("complete-subblock") is None
        superpage = common.policy_for("superpage")
        assert superpage is not None and not superpage.enable_subblocks
        psb = common.policy_for("partial-subblock")
        assert psb is not None and psb.enable_subblocks

    def test_tlb_factories_build_fresh_instances(self):
        for kind, factory in common.TLB_FACTORIES.items():
            first = factory(64)
            second = factory(64)
            assert first is not second
            assert first.capacity == 64


class TestExperimentResultHelpers:
    def test_by_label_and_column(self):
        result = common.ExperimentResult(
            experiment="E", headers=["w", "a", "b"],
            rows=[["x", 1, 2], ["y", 3, 4]],
        )
        assert result.by_label() == {"x": [1, 2], "y": [3, 4]}
        assert result.column("b") == {"x": 2, "y": 4}

    def test_render_includes_notes(self):
        result = common.ExperimentResult(
            experiment="E", headers=["w", "a"], rows=[["x", 1]], notes="N",
        )
        assert "N" in result.render()
