"""Trace and snapshot persistence round trips."""

import numpy as np
import pytest

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.workloads.io import (
    load_space, load_trace, save_space, save_trace, trace_target,
)
from repro.workloads.suite import load_workload
from repro.workloads.trace import Trace


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = Trace(
            [1, 2, 3, 4, 5], name="t", switch_points=[2],
            subblock_factor=8, segment_owners=[0, 1],
        )
        path = save_trace(trace, str(tmp_path / "t.npz"))
        loaded = load_trace(str(path))
        assert np.array_equal(loaded.vpns, trace.vpns)
        assert loaded.switch_points == (2,)
        assert loaded.segment_owners == (0, 1)
        assert loaded.subblock_factor == 8
        assert loaded.name == "t"

    def test_workload_trace_roundtrip(self, tmp_path):
        workload = load_workload("compress", trace_length=5_000)
        path = save_trace(workload.trace, str(tmp_path / "c.npz"))
        loaded = load_trace(str(path))
        assert np.array_equal(loaded.vpns, workload.trace.vpns)
        assert loaded.switch_points == workload.trace.switch_points

    def test_bad_format_rejected(self, tmp_path):
        target = tmp_path / "bad.npz"
        np.savez(target, format=np.int64(99), vpns=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_trace(str(target))

    def test_suffixless_path_roundtrip(self, tmp_path):
        trace = Trace([7, 8, 9], name="bare")
        path = save_trace(trace, str(tmp_path / "bare"))
        assert path.name == "bare.npz"
        assert path.exists()
        assert np.array_equal(load_trace(str(path)).vpns, trace.vpns)

    def test_stale_file_does_not_hijack_returned_path(self, tmp_path):
        # Regression: a leftover file at the bare path used to make the
        # `target.exists()` probe return the stale bare path instead of
        # the `.npz` the archive actually went to.
        stale = tmp_path / "t"
        stale.write_bytes(b"leftover from an older run")
        trace = Trace([1, 2, 3], name="fresh")
        path = save_trace(trace, str(stale))
        assert path.name == "t.npz"
        assert np.array_equal(load_trace(str(path)).vpns, trace.vpns)
        assert stale.read_bytes() == b"leftover from an older run"

    def test_default_segment_owners_roundtrip(self, tmp_path):
        # No switch points: a single implicit owner must survive the
        # `.tolist() or None` deserialisation path unchanged.
        trace = Trace([4, 5, 6], name="solo")
        loaded = load_trace(str(save_trace(trace, str(tmp_path / "solo"))))
        assert loaded.segment_owners == trace.segment_owners
        assert loaded.switch_points == ()

    def test_trace_target_is_pure(self, tmp_path):
        assert trace_target("x").name == "x.npz"
        assert trace_target("x.npz").name == "x.npz"
        assert trace_target("x.v2").name == "x.v2.npz"

    def test_interrupted_save_leaves_previous_archive_intact(self, tmp_path):
        original = Trace([10, 11], name="orig")
        path = save_trace(original, str(tmp_path / "t"))
        plan = FaultPlan((FaultRule("io.save_trace", "raise-enospc"),))
        with inject(plan):
            with pytest.raises(OSError):
                save_trace(Trace([99], name="new"), str(tmp_path / "t"))
        assert np.array_equal(load_trace(str(path)).vpns, original.vpns)

    def test_interrupted_save_leaves_no_partial_file(self, tmp_path):
        plan = FaultPlan((FaultRule("io.save_trace", "raise-eio"),))
        with inject(plan):
            with pytest.raises(OSError):
                save_trace(Trace([1], name="t"), str(tmp_path / "t"))
        assert list(tmp_path.iterdir()) == []


class TestSpaceIO:
    def test_roundtrip(self, tmp_path, dense_space):
        path = save_space(dense_space, str(tmp_path / "s.json"))
        loaded = load_space(str(path))
        assert len(loaded) == len(dense_space)
        assert loaded.layout.subblock_factor == dense_space.layout.subblock_factor
        for vpn, mapping in dense_space.items():
            assert loaded.translate(vpn) == mapping

    def test_segments_survive(self, tmp_path, layout):
        from repro.addr.space import AddressSpace, Segment

        space = AddressSpace(layout, "segtest")
        space.add_segment(Segment("heap", 0x100, 64))
        space.map(0x100, 0x1)
        loaded = load_space(str(save_space(space, str(tmp_path / "s.json"))))
        assert loaded.segments[0].name == "heap"
        assert loaded.name == "segtest"

    def test_custom_layout_survives(self, tmp_path):
        layout = AddressLayout(subblock_factor=4, pa_bits=36)
        from repro.addr.space import AddressSpace

        space = AddressSpace(layout)
        space.map(5, 6)
        loaded = load_space(str(save_space(space, str(tmp_path / "s.json"))))
        assert loaded.layout.subblock_factor == 4
        assert loaded.layout.pa_bits == 36

    def test_bad_format_rejected(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text('{"format": 99}')
        with pytest.raises(ConfigurationError):
            load_space(str(target))

    def test_deterministic_output(self, tmp_path, dense_space):
        a = save_space(dense_space, str(tmp_path / "a.json")).read_text()
        b = save_space(dense_space, str(tmp_path / "b.json")).read_text()
        assert a == b

    def test_interrupted_save_leaves_previous_snapshot_intact(
        self, tmp_path, dense_space
    ):
        path = save_space(dense_space, str(tmp_path / "s.json"))
        before = path.read_text()
        plan = FaultPlan((FaultRule("io.save_space", "raise-enospc"),))
        with inject(plan):
            with pytest.raises(OSError):
                save_space(dense_space, str(path))
        assert path.read_text() == before
        assert len(load_space(str(path))) == len(dense_space)

    def test_interrupted_save_leaves_no_partial_file(
        self, tmp_path, dense_space
    ):
        plan = FaultPlan((FaultRule("io.save_space", "raise-oserror"),))
        with inject(plan):
            with pytest.raises(OSError):
                save_space(dense_space, str(tmp_path / "s.json"))
        assert list(tmp_path.iterdir()) == []
