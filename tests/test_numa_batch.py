"""NUMA batch replay parity: memoized walks vs the scalar byte-walker.

The batch NUMA replay resolves each distinct VPN's walk once and charges
every occurrence by multiplication; both stateless policies make that a
pure reweighting, so every total — the
:class:`~repro.numa.replay.NumaReplayResult`, both per-node stats maps,
the policy's serve counters, and the ``numa.walk_lines`` /
``numa.walk_cycles`` registry histograms — must equal the scalar
replay's exactly.  The stateful ``migrate`` policy is order-dependent
and must be *refused* (before any stats are touched), with the engine
dispatch falling back to the scalar replay.
"""

import pytest

from repro.analysis.metrics import make_table
from repro.experiments import numa as numa_experiment
from repro.experiments.common import (
    configure_engine,
    get_miss_stream,
    get_translation_map,
    get_workload,
)
from repro.mmu.batch_kernels import BatchUnsupportedError
from repro.numa.batch import replay_misses_numa_batch
from repro.numa.replay import replay_misses_numa
from repro.numa.topology import LOCAL_CYCLES, PRESETS, SINGLE_NODE
from repro.obs.metrics import get_registry, reset_registry

TRACE_LENGTH = 20_000
TABLES = ("linear-1lvl", "hashed", "clustered")
POLICIES = ("none", "mitosis")


@pytest.fixture(scope="module")
def workload():
    return get_workload("mp3d", TRACE_LENGTH)


@pytest.fixture(scope="module")
def stream(workload):
    return get_miss_stream(workload, "single")


def fresh_table(name, workload):
    table = make_table(name, workload.layout)
    get_translation_map(workload, "single").populate(
        table, base_pages_only=True
    )
    return table


def run_both(name, workload, stream, **kwargs):
    """(scalar result+snapshot, batch result+snapshot) for one config."""
    reset_registry()
    scalar = replay_misses_numa(stream, fresh_table(name, workload), **kwargs)
    scalar_registry = get_registry().snapshot()
    reset_registry()
    batch = replay_misses_numa_batch(
        stream, fresh_table(name, workload), **kwargs
    )
    batch_registry = get_registry().snapshot()
    reset_registry()
    return (scalar, scalar_registry), (batch, batch_registry)


def assert_numa_equal(scalar, batch):
    assert batch.misses == scalar.misses
    assert batch.cache_lines == scalar.cache_lines
    assert batch.faults == scalar.faults
    for field in (
        "walks", "lines", "local_lines", "remote_lines", "cycles",
    ):
        assert getattr(batch.numa, field) == getattr(scalar.numa, field), field
    assert dict(batch.numa.lines_by_node) == dict(scalar.numa.lines_by_node)
    assert dict(batch.numa.walks_by_node) == dict(scalar.numa.walks_by_node)
    assert dict(batch.policy_stats.served_by_node) == dict(
        scalar.policy_stats.served_by_node
    )
    assert batch.policy_stats.migrations == scalar.policy_stats.migrations
    assert (
        batch.policy_stats.coherence_writes
        == scalar.policy_stats.coherence_writes
    )


# ---------------------------------------------------------------------------
# Single node: the degenerate all-local machine
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", TABLES)
def test_single_node_cycles_are_lines_times_local(name, workload, stream):
    (scalar, _), (batch, _) = run_both(
        name, workload, stream, topology=SINGLE_NODE
    )
    assert_numa_equal(scalar, batch)
    assert batch.numa.cycles == batch.cache_lines * LOCAL_CYCLES


# ---------------------------------------------------------------------------
# Multi-node machines, both stateless policies, both access patterns
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("topology", ("4-node", "8-node"))
@pytest.mark.parametrize("policy", POLICIES)
def test_multi_node_parity(topology, policy, workload, stream):
    for name in TABLES:
        (scalar, scalar_reg), (batch, batch_reg) = run_both(
            name, workload, stream,
            topology=PRESETS[topology], policy=policy,
        )
        assert_numa_equal(scalar, batch)
        assert batch_reg == scalar_reg, (name, topology, policy)


@pytest.mark.parametrize("pattern", ("block-affine", "uniform"))
def test_access_pattern_parity(pattern, workload, stream):
    (scalar, scalar_reg), (batch, batch_reg) = run_both(
        "hashed", workload, stream,
        topology=PRESETS["4-node"], policy="mitosis", access_pattern=pattern,
    )
    assert_numa_equal(scalar, batch)
    assert batch_reg == scalar_reg


def test_miss_limit_parity(workload, stream):
    (scalar, _), (batch, _) = run_both(
        "clustered", workload, stream,
        topology=PRESETS["4-node"], miss_limit=1_000,
    )
    assert_numa_equal(scalar, batch)
    assert batch.misses == 1_000


# ---------------------------------------------------------------------------
# The stateful policy is refused, and the experiment falls back
# ---------------------------------------------------------------------------
def test_migrate_policy_is_refused(workload, stream):
    table = fresh_table("hashed", workload)
    with pytest.raises(BatchUnsupportedError):
        replay_misses_numa_batch(
            stream, table, topology=PRESETS["4-node"], policy="migrate"
        )
    # Refusal happens before any stats are touched.
    assert table.stats.lookups == 0 and table.stats.cache_lines == 0


def test_experiment_dispatch_falls_back_for_migrate(workload, stream):
    scalar = numa_experiment._replay_numa(
        stream, fresh_table("hashed", workload),
        topology=PRESETS["4-node"], policy="migrate", miss_limit=2_000,
    )
    configure_engine("batch")
    try:
        batch = numa_experiment._replay_numa(
            stream, fresh_table("hashed", workload),
            topology=PRESETS["4-node"], policy="migrate", miss_limit=2_000,
        )
    finally:
        configure_engine("scalar")
    assert_numa_equal(scalar, batch)
    assert batch.policy_name == "migrate"
