"""Documentation stays runnable: execute every tutorial code block."""

import re
from pathlib import Path

import pytest

DOCS = Path(__file__).parent.parent / "docs"
README = Path(__file__).parent.parent / "README.md"


def python_blocks(path: Path):
    """Extract ```python fenced blocks from a markdown file, in order."""
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_blocks_execute():
    """The tutorial's snippets run top to bottom in one namespace."""
    blocks = python_blocks(DOCS / "tutorial.md")
    assert len(blocks) >= 5
    namespace = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"tutorial-block-{i}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - diagnostic clarity
            pytest.fail(f"tutorial block {i} failed: {error}\n{block}")


def test_readme_quickstart_executes():
    """The README quick-start snippet runs as written."""
    blocks = python_blocks(README)
    assert blocks, "README has no python snippet"
    namespace = {}
    exec(compile(blocks[0], "readme-quickstart", "exec"), namespace)


def test_docs_reference_real_modules():
    """Module paths mentioned in the docs must import."""
    import importlib

    pattern = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
    for path in [DOCS / "tutorial.md", DOCS / "paper_mapping.md"]:
        for match in set(pattern.findall(path.read_text())):
            module = match
            # Strip trailing attribute names until the module imports.
            while module:
                try:
                    importlib.import_module(module)
                    break
                except ImportError:
                    module = module.rpartition(".")[0]
            assert module, f"{match} (in {path.name}) does not resolve"
