"""Appendix Table 2 formulae: unit behaviour and exactness vs built tables."""

import pytest

from repro.addr.layout import AddressLayout
from repro.addr.space import AddressSpace
from repro.analysis import formulae
from repro.core.clustered import ClusteredPageTable
from repro.errors import ConfigurationError
from repro.pagetables.forward import DEFAULT_LEVEL_BITS, ForwardMappedPageTable
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.linear import LinearPageTable


class TestSizeFormulae:
    def test_hashed_is_24_per_pte(self):
        assert formulae.hashed_size(100) == 2400

    def test_clustered_matches_figure7(self):
        assert formulae.clustered_size(10, 16) == 10 * 144
        assert formulae.clustered_size(10, 4) == 10 * 48

    def test_clustered_wide_interpolates(self):
        full = formulae.clustered_wide_size(10, 16, fss=0.0)
        wide = formulae.clustered_wide_size(10, 16, fss=1.0)
        assert full == formulae.clustered_size(10, 16)
        assert wide == 240  # all 24-byte nodes
        mid = formulae.clustered_wide_size(10, 16, fss=0.5)
        assert wide < mid < full

    def test_clustered_wide_rejects_bad_fss(self):
        with pytest.raises(ConfigurationError):
            formulae.clustered_wide_size(10, 16, fss=1.5)

    def test_linear_hashed_constant(self):
        assert formulae.linear_hashed_size(3) == 3 * (4096 + 24)

    def test_breakeven_at_six_pages(self):
        # §3's claim: for s=16, clustered == hashed at six pages per block.
        assert formulae.clustered_size(1, 16) == formulae.hashed_size(6)


class TestAccessFormulae:
    def test_hashed_one_plus_half_alpha(self):
        assert formulae.hashed_access_lines(2.0) == 2.0
        assert formulae.hashed_access_lines(0.0) == 1.0

    def test_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            formulae.hashed_access_lines(-1)

    def test_linear_one_plus_rm(self):
        assert formulae.linear_access_lines(0.1, 5.0) == pytest.approx(1.5)

    def test_forward_is_levels(self):
        assert formulae.forward_mapped_access_lines(7) == 7.0
        with pytest.raises(ConfigurationError):
            formulae.forward_mapped_access_lines(0)


def random_space(layout, seed=5, pages=300):
    import random

    rng = random.Random(seed)
    space = AddressSpace(layout)
    frame = 0
    while len(space) < pages:
        base = rng.randrange(0, 1 << 44)
        run = rng.randint(1, 20)
        for i in range(run):
            if not space.is_mapped(base + i):
                space.map(base + i, frame)
                frame += 1
    return space


class TestExactnessAgainstTables:
    """The size formulae are definitions: built tables must match exactly."""

    def test_hashed_exact(self, layout):
        space = random_space(layout)
        table = HashedPageTable(layout)
        for vpn, mapping in space.items():
            table.insert(vpn, mapping.ppn)
        assert table.size_bytes() == formulae.hashed_size(space.nactive(1))

    def test_clustered_exact(self, layout):
        space = random_space(layout)
        table = ClusteredPageTable(layout)
        for vpn, mapping in space.items():
            table.insert(vpn, mapping.ppn)
        assert table.size_bytes() == formulae.clustered_size(
            space.nactive(16), 16
        )

    def test_multilevel_linear_exact(self, layout):
        space = random_space(layout)
        table = LinearPageTable(layout, structure="multilevel")
        for vpn, mapping in space.items():
            table.insert(vpn, mapping.ppn)
        assert table.size_bytes() == formulae.multilevel_linear_size(
            space.nactive
        )

    def test_forward_mapped_exact(self, layout):
        space = random_space(layout)
        table = ForwardMappedPageTable(layout)
        for vpn, mapping in space.items():
            table.insert(vpn, mapping.ppn)
        assert table.size_bytes() == formulae.forward_mapped_size(
            space.nactive, DEFAULT_LEVEL_BITS
        )

    def test_access_formula_under_uniform_probes(self, layout):
        import random

        rng = random.Random(1)
        space = random_space(layout, pages=2000)
        table = HashedPageTable(layout, num_buckets=256)
        for vpn, mapping in space.items():
            table.insert(vpn, mapping.ppn)
        vpns = space.vpns()
        for _ in range(20_000):
            table.lookup(rng.choice(vpns))
        predicted = formulae.hashed_access_lines(table.load_factor())
        assert table.stats.lines_per_lookup == pytest.approx(predicted, rel=0.1)
