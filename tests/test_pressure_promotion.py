"""The §7 memory-pressure and §5 promotion-scan studies."""

import pytest

from repro.experiments import pressure, promotion_scan


class TestPressure:
    def test_unloaded_machine_places_everything(self):
        result = pressure.run(scenarios=((2.0, 0.0),))
        row = result.rows[0]
        assert row[2] == 1.0   # placement rate
        assert row[3] == 1.0   # fss

    def test_fragmentation_destroys_placement(self):
        result = pressure.run(scenarios=((2.0, 0.0), (1.1, 0.5)))
        relaxed, pressed = result.rows
        assert pressed[2] < relaxed[2]          # placement rate drops
        assert pressed[3] < relaxed[3]          # fss drops
        assert pressed[4] > relaxed[4]          # size advantage shrinks

    def test_monotone_decay_over_scenarios(self):
        result = pressure.run(
            scenarios=((2.0, 0.0), (1.25, 0.3), (1.1, 0.5))
        )
        placements = [row[2] for row in result.rows]
        assert placements == sorted(placements, reverse=True)

    def test_rejects_multiprocess_workload(self):
        with pytest.raises(ValueError):
            pressure.run(workload_name="gcc")


class TestPromotionScan:
    def test_cost_ordering(self):
        result = promotion_scan.run(workloads=("mp3d",))
        row = dict(zip(result.headers[1:], result.rows[0][1:]))
        # §5: clustered ~1 line per block, hashed ~subblock-factor probes.
        assert row["clustered"] < 2.0
        assert row["linear-1lvl"] < 2.0
        assert row["hashed"] > 10.0

    def test_promotable_blocks_found(self):
        result = promotion_scan.run(workloads=("mp3d",))
        row = dict(zip(result.headers[1:], result.rows[0][1:]))
        # mp3d is dense and properly placed: most blocks promotable.
        assert row["promotable blocks"] > 0.8 * row["blocks"]

    def test_sparse_workload_finds_fewer(self):
        result = promotion_scan.run(workloads=("gcc",))
        row = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert row["promotable blocks"] < 0.5 * row["blocks"]
