"""Property-based tests: every page table is a faithful dictionary.

The central invariant of the whole library: **any** page table, after any
sequence of inserts and removes, must translate exactly the set of pages a
plain dictionary (the AddressSpace oracle) says are mapped, to exactly the
same frames.  Hypothesis drives randomized operation sequences against
every organisation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addr.layout import AddressLayout
from repro.addr.space import Mapping
from repro.core.clustered import ClusteredPageTable
from repro.core.variable import VariableClusteredPageTable
from repro.errors import PageFaultError
from repro.mmu.tlb import FullyAssociativeTLB, TLBEntry
from repro.os.physmem import ReservationAllocator
from repro.pagetables.forward import ForwardMappedPageTable
from repro.pagetables.hashed import HashedPageTable, SuperpageIndexHashedPageTable
from repro.pagetables.inverted import InvertedPageTable
from repro.pagetables.linear import LinearPageTable
from repro.pagetables.pte import PTEKind
from repro.pagetables.software_tlb import SoftwareTLBTable

LAYOUT = AddressLayout()

TABLE_FACTORIES = [
    lambda: HashedPageTable(LAYOUT, num_buckets=64),
    lambda: InvertedPageTable(LAYOUT, num_buckets=64),
    lambda: SuperpageIndexHashedPageTable(LAYOUT, num_buckets=64),
    lambda: SoftwareTLBTable(LAYOUT, num_sets=16, associativity=2),
    lambda: LinearPageTable(LAYOUT, structure="multilevel"),
    lambda: LinearPageTable(LAYOUT, structure="ideal"),
    lambda: ForwardMappedPageTable(LAYOUT),
    lambda: ClusteredPageTable(LAYOUT, num_buckets=64),
    lambda: VariableClusteredPageTable(LAYOUT, num_buckets=64),
]

# Operations: (vpn, ppn) pairs; a vpn already mapped means "remove it".
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=(1 << 20)),
    ),
    max_size=60,
)


@pytest.mark.parametrize("factory", TABLE_FACTORIES,
                         ids=lambda f: type(f()).__name__)
@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_any_table_matches_dictionary_oracle(factory, ops):
    table = factory()
    oracle = {}
    for vpn, ppn in ops:
        if vpn in oracle:
            table.remove(vpn)
            del oracle[vpn]
        else:
            table.insert(vpn, ppn)
            oracle[vpn] = ppn
    for vpn in range(0, 501, 7):
        if vpn in oracle:
            assert table.lookup(vpn).ppn == oracle[vpn]
        else:
            with pytest.raises(PageFaultError):
                table.lookup(vpn)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_clustered_size_invariant(ops):
    """Clustered size always equals nodes' format sizes, and node count
    equals the number of distinct populated (block, kind) units."""
    table = ClusteredPageTable(LAYOUT, num_buckets=32)
    live = {}
    for vpn, ppn in ops:
        if vpn in live:
            table.remove(vpn)
            del live[vpn]
        else:
            table.insert(vpn, ppn)
            live[vpn] = ppn
    blocks = {vpn // 16 for vpn in live}
    assert table.node_count == len(blocks)
    assert table.size_bytes() == len(blocks) * 144


@settings(max_examples=40, deadline=None)
@given(
    mask=st.integers(min_value=1, max_value=(1 << 16) - 1),
    vpbn=st.integers(min_value=0, max_value=1 << 30),
)
def test_partial_subblock_exact_valid_set(mask, vpbn):
    """A psb PTE translates exactly the pages its mask validates."""
    table = ClusteredPageTable(LAYOUT)
    base_ppn = 16 * 5
    table.insert_partial_subblock(vpbn, mask, base_ppn)
    block_base = vpbn * 16
    for boff in range(16):
        if (mask >> boff) & 1:
            assert table.lookup(block_base + boff).ppn == base_ppn + boff
        else:
            with pytest.raises(PageFaultError):
                table.lookup(block_base + boff)


@settings(max_examples=30, deadline=None)
@given(
    vpns=st.lists(st.integers(min_value=0, max_value=256), min_size=1,
                  max_size=200),
)
def test_tlb_never_exceeds_capacity_and_lru_holds(vpns):
    """After any reference string, the TLB holds at most `capacity`
    entries, and they are exactly the most recently used distinct pages."""
    capacity = 8
    tlb = FullyAssociativeTLB(capacity)
    for vpn in vpns:
        if tlb.lookup(vpn) is None:
            tlb.fill(TLBEntry(base_vpn=vpn, npages=1, base_ppn=vpn, attrs=0,
                              valid_mask=1, kind=PTEKind.BASE))
    assert len(tlb) <= capacity
    recent = []
    for vpn in reversed(vpns):
        if vpn not in recent:
            recent.append(vpn)
        if len(recent) == capacity:
            break
    resident = {entry.base_vpn for entry in tlb.entries()}
    assert resident == set(recent[: len(resident)])


@settings(max_examples=30, deadline=None)
@given(
    vpns=st.lists(
        st.integers(min_value=0, max_value=2000), min_size=1, max_size=64,
        unique=True,
    )
)
def test_reservation_allocator_invariants(vpns):
    """No frame is handed out twice, and frames for one block either share
    its reservation (properly placed) or are counted as fallbacks."""
    allocator = ReservationAllocator(4096, LAYOUT)
    seen = set()
    for vpn in vpns:
        ppn = allocator.allocate(vpn)
        assert ppn not in seen
        seen.add(ppn)
    stats = allocator.stats
    assert stats.properly_placed + stats.fallback_placed == len(vpns)


@settings(max_examples=25, deadline=None)
@given(
    mapped=st.lists(
        st.integers(min_value=0, max_value=2000), min_size=1, max_size=60,
        unique=True,
    ),
    picks=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=250,
    ),
    entries=st.sampled_from([2, 4, 8]),
    table_factory=st.sampled_from(
        [lambda: HashedPageTable(LAYOUT, num_buckets=32),
         lambda: ClusteredPageTable(LAYOUT, num_buckets=32)]
    ),
)
def test_lines_per_miss_invariant_under_stream_round_trip(
    mapped, picks, entries, table_factory
):
    """Serialising a miss stream to disk and back changes no replay cost.

    For arbitrary synthetic workloads (random sparse mappings, random
    reference strings, tiny TLBs so eviction churn is high), the phase-2
    ``ReplayResult`` — and in particular ``lines_per_miss`` — must be
    identical whether the stream came straight from ``collect_misses`` or
    from a ``.npz`` round trip.
    """
    import tempfile

    from repro.addr.space import AddressSpace
    from repro.cache.stream_cache import load_stream, save_stream
    from repro.mmu.simulate import collect_misses, replay_misses
    from repro.os.translation_map import TranslationMap
    from repro.workloads.trace import Trace

    space = AddressSpace(LAYOUT)
    for index, vpn in enumerate(mapped):
        space.map(vpn, 0x1000 + index)
    tmap = TranslationMap.from_space(space)
    trace = Trace([mapped[p % len(mapped)] for p in picks], name="synthetic")
    stream = collect_misses(trace, FullyAssociativeTLB(entries), tmap)

    with tempfile.TemporaryDirectory() as directory:
        reloaded = load_stream(save_stream(stream, f"{directory}/s.npz"))

    def replay(s):
        table = table_factory()
        tmap.populate(table, base_pages_only=True)
        return replay_misses(s, table)

    fresh, cached = replay(stream), replay(reloaded)
    assert cached == fresh
    assert cached.lines_per_miss == fresh.lines_per_miss


@settings(max_examples=30, deadline=None)
@given(
    base_block=st.integers(min_value=0, max_value=1 << 20),
    npages_log=st.integers(min_value=0, max_value=6),
)
def test_superpage_translates_whole_range(base_block, npages_log):
    """A superpage PTE resolves every covered page with offset arithmetic."""
    npages = 1 << npages_log
    table = ClusteredPageTable(LAYOUT)
    base_vpn = base_block * 64  # aligned for any npages <= 64
    base_ppn = 64 * 3
    table.insert_superpage(base_vpn, npages, base_ppn)
    for off in range(npages):
        result = table.lookup(base_vpn + off)
        assert result.ppn == base_ppn + off
        assert result.base_vpn == base_vpn and result.npages == npages
