"""Live monitoring: the heartbeat tracker, snapshots, and stall detection.

The contract under test (`repro.obs.watch`): the runner's
``progress.json`` is atomic and rate-limited, never touches stdout, and
stamps a terminal state; ``repro watch`` fuses heartbeat + journal into
one snapshot whose ETA prefers ledger history, and **reports a SIGKILLed
run as stalled instead of hanging** — the observer exits 3, loudly.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import cli
from repro.experiments import common, runner
from repro.obs.ledger import BenchLedger, LedgerRow
from repro.obs.watch import (
    DEFAULT_STALL_TIMEOUT,
    PROGRESS_NAME,
    ProgressTracker,
    render_snapshot,
    snapshot,
    watch,
)
from repro.resilience.journal import JOURNAL_NAME


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def _read_progress(run_dir):
    return json.loads((Path(run_dir) / PROGRESS_NAME).read_text())


class TestProgressTracker:
    def test_initial_write_and_phases(self, tmp_path):
        clock = FakeClock()
        tracker = ProgressTracker(
            tmp_path, plan=["fig9", "table2"], clock=clock
        )
        doc = _read_progress(tmp_path)
        assert doc["progress_version"] == 1
        assert doc["state"] == "running"
        assert doc["total"] == 2 and doc["done"] == 0
        tracker.begin_phase("experiments", 2)
        clock.now += 10
        tracker.task_done("fig9", seconds=4.0)
        doc = _read_progress(tmp_path)
        assert doc["completed"] == ["fig9"]
        assert doc["phases"]["experiments"]["done"] == 1
        assert doc["phases"]["experiments"]["throughput"] == 0.25

    def test_rate_limited_then_forced(self, tmp_path):
        clock = FakeClock()
        tracker = ProgressTracker(tmp_path, plan=["a", "b"], clock=clock)
        tracker.begin_phase("experiments", 2)
        first = _read_progress(tmp_path)["updated_at"]
        clock.now += 0.5  # inside the heartbeat interval
        tracker.heartbeat()
        assert _read_progress(tmp_path)["updated_at"] == first
        clock.now += 10.0
        tracker.heartbeat()
        assert _read_progress(tmp_path)["updated_at"] > first
        # Terminal states always force a write.
        clock.now += 0.1
        tracker.finish()
        assert _read_progress(tmp_path)["state"] == "finished"

    def test_skip_counts_resumed_work(self, tmp_path):
        clock = FakeClock()
        tracker = ProgressTracker(tmp_path, plan=["a", "b"], clock=clock)
        clock.now += 10.0  # past the heartbeat rate limit
        tracker.skip("a")
        assert _read_progress(tmp_path)["done"] == 1

    def test_abandon_records_the_error(self, tmp_path):
        tracker = ProgressTracker(tmp_path, plan=["a"], clock=FakeClock())
        tracker.abandon("ValueError: boom")
        doc = _read_progress(tmp_path)
        assert doc["state"] == "failed"
        assert doc["error"] == "ValueError: boom"

    def test_unwritable_directory_does_not_raise(self, tmp_path):
        tracker = ProgressTracker(tmp_path, plan=["a"], clock=FakeClock())
        tracker.path = tmp_path / "gone" / PROGRESS_NAME
        tracker.finish()  # must swallow the OSError


class TestSnapshot:
    def _running(self, tmp_path, clock, plan=("a", "b", "c")):
        tracker = ProgressTracker(tmp_path, plan=list(plan), clock=clock)
        tracker.begin_phase("experiments", len(plan))
        return tracker

    def test_missing_directory(self, tmp_path):
        snap = snapshot(tmp_path)
        assert snap.state == "missing"
        assert snap.exit_code == 2
        assert "watch:" in render_snapshot(snap)

    def test_running_with_throughput_eta(self, tmp_path):
        clock = FakeClock()
        tracker = self._running(tmp_path, clock)
        clock.now += 8
        tracker.task_done("a", seconds=4.0)
        snap = snapshot(tmp_path, now=clock.now + 1)
        assert snap.state == "running"
        assert snap.done == 1 and snap.total == 3
        assert snap.pending == ["b", "c"]
        assert snap.eta_source == "throughput"
        assert snap.eta_seconds == pytest.approx(8.0)

    def test_ledger_eta_preferred_over_throughput(self, tmp_path):
        clock = FakeClock()
        tracker = self._running(tmp_path, clock)
        clock.now += 8
        tracker.task_done("a", seconds=4.0)
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        for key, seconds in (("b", 10.0), ("c", 20.0)):
            ledger.append_rows([LedgerRow(
                "run", key, "seconds", seconds, run_id=f"r-{key}",
            )])
        snap = snapshot(tmp_path, ledger=ledger.load(), now=clock.now + 1)
        assert snap.eta_source == "ledger"
        assert snap.eta_seconds == pytest.approx(30.0)

    def test_partial_ledger_history_scales(self, tmp_path):
        clock = FakeClock()
        ProgressTracker(tmp_path, plan=["a", "b"], clock=clock)
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        ledger.append_rows([LedgerRow(
            "run", "a", "seconds", 10.0, run_id="r-a",
        )])
        snap = snapshot(tmp_path, ledger=ledger.load(), now=clock.now)
        assert snap.eta_source == "ledger-partial"
        assert snap.eta_seconds == pytest.approx(20.0)

    def test_no_history_says_so(self, tmp_path):
        clock = FakeClock()
        ProgressTracker(tmp_path, plan=["a"], clock=clock)
        snap = snapshot(tmp_path, now=clock.now)
        assert snap.eta_source == "none"
        assert any("no history" in note for note in snap.notes)

    def test_stall_flips_state_and_exit_code(self, tmp_path):
        clock = FakeClock()
        self._running(tmp_path, clock)
        snap = snapshot(
            tmp_path, stall_timeout=60.0, now=clock.now + 1000.0
        )
        assert snap.state == "stalled"
        assert snap.exit_code == 3
        assert "STALLED" in render_snapshot(snap)

    def test_finished_state_wins_over_idleness(self, tmp_path):
        clock = FakeClock()
        tracker = self._running(tmp_path, clock)
        tracker.finish()
        snap = snapshot(tmp_path, now=clock.now + 10_000.0)
        assert snap.state == "finished"
        assert snap.exit_code == 0

    def test_journal_is_authoritative_for_completions(self, tmp_path):
        clock = FakeClock()
        self._running(tmp_path, clock, plan=("a", "b"))
        # Heartbeat lagging: the journal already has "a" fsync'd.
        journal_line = json.dumps(
            {"entry": {"key": "a", "payload": {}, "digest": ""}}
        )
        (tmp_path / JOURNAL_NAME).write_text(journal_line + "\n")
        from repro.resilience.journal import RunJournal

        state = RunJournal(tmp_path).load()
        if "a" in state.entries:
            snap = snapshot(tmp_path, now=clock.now)
            assert "a" in snap.completed


class TestWatchLoop:
    def test_once_returns_snapshot_exit_code(self, tmp_path):
        clock = FakeClock()
        tracker = ProgressTracker(tmp_path, plan=["a"], clock=clock)
        tracker.finish()
        stream = io.StringIO()
        assert watch(tmp_path, once=True, stream=stream) == 0
        assert "state=finished" in stream.getvalue()

    def test_cli_watch_once(self, tmp_path):
        tracker = ProgressTracker(tmp_path, plan=["a"], clock=FakeClock())
        tracker.finish()
        assert cli.main(["watch", str(tmp_path), "--once"]) == 0

    def test_missing_run_dir_exits_2_not_hangs(self, tmp_path):
        stream = io.StringIO()
        assert watch(tmp_path / "nope", once=True, stream=stream) == 2

    def test_max_polls_bounds_a_running_watch(self, tmp_path):
        ProgressTracker(tmp_path, plan=["a"], clock=FakeClock(time.time()))
        stream = io.StringIO()
        rc = watch(
            tmp_path, once=False, stream=stream, interval=0.0, max_polls=3
        )
        assert rc == 0
        assert stream.getvalue().count("watch:") == 3


class TestRunnerIntegration:
    def test_run_all_writes_finished_progress(self, tmp_path):
        common.clear_caches()
        try:
            runner.run_all_with_metrics(
                2_000, jobs=1, cache_dir=str(tmp_path / "cache"),
                workloads=("mp3d",), only=["table1"],
                resilience=runner.ResilienceConfig(
                    run_dir=str(tmp_path / "run")
                ),
            )
        finally:
            common.clear_caches()
            common.configure_stream_cache(None)
        doc = _read_progress(tmp_path / "run")
        assert doc["state"] == "finished"
        assert doc["completed"] == ["table1"]
        assert doc["phases"]["experiments"]["done"] == 1


@pytest.mark.slow
def test_sigkilled_run_reports_stall_not_hang(tmp_path):
    """SIGKILL the runner mid-run; ``repro watch`` must exit 3, fast."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
    run_dir = tmp_path / "run"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.runner",
            "--trace-length", "2000", "--workloads", "mp3d",
            "--only", "table1,fig9,fig10,fig11a,fig11b",
            "--cache-dir", str(tmp_path / "cache"),
            "--run-dir", str(run_dir),
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=env, cwd=repo_root,
    )
    journal_path = run_dir / JOURNAL_NAME
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if journal_path.exists() and '"entry"' in journal_path.read_text():
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=60)
    assert journal_path.exists(), "runner made no durable progress"

    # The heartbeat froze mid-run: everything idles from here on.  A
    # tiny stall timeout keeps the test fast; the watcher must *return*.
    started = time.monotonic()
    rc = cli.main([
        "watch", str(run_dir), "--once", "--stall-timeout", "0.5",
    ])
    assert time.monotonic() - started < 30.0
    if rc != 3:
        # The kill may have landed after the final journal append but
        # before the terminal heartbeat — then the run looks interrupted
        # or still mid-write.  Wait out the stall window and re-observe.
        time.sleep(1.0)
        rc = cli.main([
            "watch", str(run_dir), "--once", "--stall-timeout", "0.5",
        ])
    assert rc == 3, f"SIGKILLed run not reported as stalled (rc={rc})"
