"""Differential oracle: the batch replay engine vs the scalar reference.

The batch engine's whole claim is *exactness*: for every supported table
it must reproduce the scalar replay bit for bit — the
:class:`~repro.mmu.simulate.ReplayResult`, the table's
:class:`~repro.pagetables.base.WalkStats` (including multi-table
constituents), the tracer aggregates, the registry histograms, and the
walk-profile heat rows.  These tests pin that contract on the paper's
workloads in both replay modes, and then *sabotage* the kernels two ways
(an off-by-one probe count, a dropped fault) to prove the differential
actually has teeth: a batch engine with either classic vectorisation bug
fails the oracle.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.metrics import make_table
from repro.experiments import common
from repro.experiments.common import (
    get_miss_stream,
    get_translation_map,
    get_workload,
)
from repro.mmu import batch as batch_module
from repro.mmu.batch import replay_misses_batch
from repro.mmu.batch_kernels import BatchUnsupportedError, compile_kernel
from repro.mmu.simulate import replay_misses
from repro.obs.metrics import get_registry, reset_registry
from repro.obs.profile import WalkProfile
from repro.obs.trace import WalkTracer, install_tracer, uninstall_tracer
from repro.pagetables.guarded import GuardedPageTable

TRACE_LENGTH = 20_000

#: The four Figure 11 organisations plus the multi-table composition.
TABLES = ("linear-1lvl", "forward-mapped", "hashed", "clustered")

#: (TLB kind, complete-subblock replay?, wide PTEs?) replay modes.
MODES = (
    ("single", False, False),
    ("superpage", False, True),
    ("complete-subblock", True, False),
)


@pytest.fixture(scope="module")
def workload():
    return get_workload("mp3d", TRACE_LENGTH)


def fresh_table(name, workload, tlb_kind="single", base_pages_only=True):
    table = make_table(name, workload.layout)
    get_translation_map(workload, tlb_kind).populate(
        table, base_pages_only=base_pages_only
    )
    return table


def assert_replays_equal(scalar, batch):
    assert batch.misses == scalar.misses
    assert batch.cache_lines == scalar.cache_lines
    assert batch.probes == scalar.probes
    assert batch.faults == scalar.faults
    assert dict(batch.by_kind) == dict(scalar.by_kind)


def _constituents(table):
    """The table plus any inner tables whose stats advance on replay."""
    return [table] + list(getattr(table, "tables", ()))


def assert_stats_equal(scalar_table, batch_table):
    for left, right in zip(
        _constituents(scalar_table), _constituents(batch_table)
    ):
        for field in ("lookups", "faults", "cache_lines", "probes"):
            assert getattr(right.stats, field) == getattr(left.stats, field), (
                left.name, field,
            )


def run_both(name, workload, tlb_kind="single", complete=False,
             base_pages_only=True):
    stream = get_miss_stream(workload, tlb_kind)
    scalar_table = fresh_table(name, workload, tlb_kind, base_pages_only)
    batch_table = fresh_table(name, workload, tlb_kind, base_pages_only)
    scalar = replay_misses(stream, scalar_table, complete_subblock=complete)
    batch = replay_misses_batch(
        stream, batch_table, complete_subblock=complete
    )
    return scalar, batch, scalar_table, batch_table


# ---------------------------------------------------------------------------
# The oracle: every supported table, both replay modes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("tlb_kind,complete,wide", MODES)
@pytest.mark.parametrize("name", TABLES)
def test_batch_matches_scalar_exactly(name, tlb_kind, complete, wide, workload):
    if wide and name == "hashed":
        # A grain-1 hashed table cannot hold superpage PTEs; Figure 11b
        # uses the two-table composition there (tested below).
        name = "hashed-multi"
    scalar, batch, scalar_table, batch_table = run_both(
        name, workload, tlb_kind, complete, base_pages_only=not wide
    )
    assert_replays_equal(scalar, batch)
    assert_stats_equal(scalar_table, batch_table)


def test_batch_matches_scalar_for_multi_table(workload):
    """Constituent WalkStats must advance too, in both replay modes."""
    for tlb_kind, complete, wide in MODES:
        scalar, batch, scalar_table, batch_table = run_both(
            "hashed-multi", workload, tlb_kind, complete,
            base_pages_only=not wide,
        )
        assert_replays_equal(scalar, batch)
        assert_stats_equal(scalar_table, batch_table)


def test_batch_matches_scalar_for_guarded(workload):
    stream = get_miss_stream(workload, "single")
    tmap = get_translation_map(workload, "single")
    tables = []
    for _ in range(2):
        table = GuardedPageTable(workload.layout)
        tmap.populate(table, base_pages_only=True)
        tables.append(table)
    scalar = replay_misses(stream, tables[0])
    batch = replay_misses_batch(stream, tables[1])
    assert_replays_equal(scalar, batch)
    for field in ("lookups", "faults", "cache_lines", "probes"):
        assert getattr(tables[1].stats, field) == getattr(
            tables[0].stats, field
        )


def test_batch_faults_match_scalar_on_foreign_stream(workload):
    """A stream with unmapped VPNs: fault accounting must agree."""
    stream = get_miss_stream(workload, "single")
    # Append the same VPNs far outside the mapped space: every appended
    # miss must fault identically under both engines.
    mixed = replace(
        stream,
        vpns=np.concatenate([stream.vpns, stream.vpns + (1 << 40)]),
        block_miss=np.concatenate([stream.block_miss, stream.block_miss]),
    )
    for name in TABLES:
        scalar_table = fresh_table(name, workload)
        batch_table = fresh_table(name, workload)
        scalar = replay_misses(mixed, scalar_table)
        batch = replay_misses_batch(mixed, batch_table)
        assert batch.faults == scalar.faults and batch.faults > 0, name
        assert_replays_equal(scalar, batch)
        assert_stats_equal(scalar_table, batch_table)


# ---------------------------------------------------------------------------
# Observability parity: tracer aggregates, histograms, heat
# ---------------------------------------------------------------------------
def _traced_replay(engine_fn, stream, table, complete):
    registry = reset_registry()
    profile = WalkProfile()
    tracer = install_tracer(
        WalkTracer(capacity=64, registry=registry, profile=profile)
    )
    try:
        engine_fn(stream, table, complete_subblock=complete)
    finally:
        uninstall_tracer(tracer)
    aggregates = {
        "recorded": tracer.recorded,
        "total_lines": tracer.total_lines,
        "replay_lines": tracer.replay_lines,
        "total_probes": tracer.total_probes,
        "faults": tracer.faults,
        "lines_by_table": dict(tracer.lines_by_table),
        "lines_by_node": dict(tracer.lines_by_node),
        "events_by_kind": dict(tracer.events_by_kind),
    }
    return aggregates, registry.snapshot(), profile.as_dict()


@pytest.mark.parametrize("complete", (False, True))
def test_tracer_and_profile_parity(workload, complete):
    tlb_kind = "complete-subblock" if complete else "single"
    stream = get_miss_stream(workload, tlb_kind)
    for name in ("hashed", "clustered"):
        scalar = _traced_replay(
            replay_misses, stream, fresh_table(name, workload, tlb_kind),
            complete,
        )
        batch = _traced_replay(
            replay_misses_batch, stream,
            fresh_table(name, workload, tlb_kind), complete,
        )
        assert batch[0] == scalar[0], name  # tracer aggregates
        assert batch[1] == scalar[1], name  # registry histograms
        assert batch[2] == scalar[2], name  # walk profile incl. heat


# ---------------------------------------------------------------------------
# Engine dispatch and fallback
# ---------------------------------------------------------------------------
def test_engine_dispatch_replays_batch(workload, monkeypatch):
    stream = get_miss_stream(workload, "single")
    scalar = common.replay(stream, fresh_table("hashed", workload))
    monkeypatch.setattr(common, "_ENGINE", "batch")
    batch = common.replay(stream, fresh_table("hashed", workload))
    assert_replays_equal(scalar, batch)


def test_engine_dispatch_falls_back_for_unsupported_table(
    workload, monkeypatch
):
    """SoftwareTLBTable has no kernel: batch engine must defer to scalar."""
    from repro.pagetables.software_tlb import SoftwareTLBTable

    def fronted():
        table = SoftwareTLBTable(
            workload.layout, num_sets=64, associativity=2,
            backing=make_table("hashed", workload.layout),
        )
        get_translation_map(workload, "single").populate(
            table, base_pages_only=True
        )
        return table

    stream = get_miss_stream(workload, "single")
    with pytest.raises(BatchUnsupportedError):
        compile_kernel(fronted())
    scalar = common.replay(stream, fronted())
    monkeypatch.setattr(common, "_ENGINE", "batch")
    fallback = common.replay(stream, fronted())
    assert_replays_equal(scalar, fallback)


def test_configure_engine_rejects_unknown():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        common.configure_engine("simd")
    assert common.active_engine() in common.ENGINES


# ---------------------------------------------------------------------------
# Sabotage: the oracle must catch classic vectorisation bugs
# ---------------------------------------------------------------------------
class _OffByOneProbes:
    """A kernel that over-counts every walk's probes by one."""

    def __init__(self, inner):
        self._inner = inner

    def walk(self, vpns):
        lines, probes, kind = self._inner.walk(vpns)
        return lines, probes + 1, kind

    def block(self, vpbns):
        return self._inner.block(vpbns)


class _DroppedFault:
    """A kernel that silently resolves every faulting walk."""

    def __init__(self, inner):
        self._inner = inner

    def walk(self, vpns):
        lines, probes, kind = self._inner.walk(vpns)
        kind = np.where(kind < 0, 0, kind)  # faults become BASE hits
        return lines, probes, kind

    def block(self, vpbns):
        return self._inner.block(vpbns)


@pytest.mark.parametrize("sabotage", (_OffByOneProbes, _DroppedFault))
def test_differential_catches_sabotaged_kernels(workload, monkeypatch, sabotage):
    stream = get_miss_stream(workload, "single")
    if sabotage is _DroppedFault:
        # The dropped-fault bug only shows on a stream that faults.
        stream = replace(
            stream,
            vpns=np.concatenate([stream.vpns, stream.vpns + (1 << 40)]),
            block_miss=np.concatenate([stream.block_miss, stream.block_miss]),
        )
    monkeypatch.setattr(
        batch_module, "compile_kernel",
        lambda table: sabotage(compile_kernel(table)),
    )
    scalar_table = fresh_table("hashed", workload)
    batch_table = fresh_table("hashed", workload)
    scalar = replay_misses(stream, scalar_table)
    batch = replay_misses_batch(stream, batch_table)
    with pytest.raises(AssertionError):
        assert_replays_equal(scalar, batch)
        assert_stats_equal(scalar_table, batch_table)
