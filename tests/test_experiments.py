"""Experiment drivers: each reproduced table/figure shows the paper's shape.

These are the acceptance tests of the reproduction: they run the actual
experiment code (on reduced traces / workload subsets for speed) and
assert the qualitative claims the paper makes about each figure.
"""

import pytest

from repro.experiments import fig9, fig10, fig11, sensitivity, table1, table2
from repro.experiments.common import clear_caches, get_workload

#: A fast but representative subset: one dense, one scientific, one sparse
#: multiprogrammed workload.
SUBSET = ("coral", "mp3d", "gcc")
TRACE_LENGTH = 30_000


@pytest.fixture(scope="module", autouse=True)
def _isolated_caches():
    clear_caches()
    # Pre-warm the subset at the reduced trace length.
    for name in SUBSET + ("kernel",):
        get_workload(name, TRACE_LENGTH)
    yield
    clear_caches()


class TestTable1:
    def test_structure_and_footprints(self):
        result = table1.run(workloads=SUBSET, trace_length=TRACE_LENGTH)
        rows = result.by_label()
        assert set(rows) == set(SUBSET) | {"kernel"}
        for name in SUBSET:
            sim_kb = rows[name][5]
            paper_kb = rows[name][6]
            assert sim_kb == pytest.approx(paper_kb, rel=0.15)

    def test_miss_intensity_ordering(self):
        # coral must be the most TLB-intensive of the subset, gcc the least.
        result = table1.run(workloads=SUBSET, trace_length=TRACE_LENGTH)
        ratios = result.column("misses/1k refs")
        assert ratios["coral"] > ratios["mp3d"] > ratios["gcc"]


class TestFig9:
    def test_clustered_is_always_smallest(self):
        result = fig9.run(workloads=SUBSET + ("kernel",))
        for row in result.rows:
            label, *values = row
            by_series = dict(zip(result.headers[1:], values))
            assert by_series["clustered"] == min(values), label
            assert by_series["hashed"] == pytest.approx(1.0)

    def test_linear_explodes_for_sparse(self):
        result = fig9.run(workloads=("gcc", "coral"))
        sizes = result.column("linear-6lvl")
        assert sizes["gcc"] > 2.0       # paper truncates at 5
        assert sizes["coral"] < 1.0     # dense: fine

    def test_forward_mapped_tracks_linear(self):
        result = fig9.run(workloads=("gcc",))
        row = result.by_label()["gcc"]
        by_series = dict(zip(result.headers[1:], row))
        assert by_series["forward-mapped"] > 1.0


class TestFig10:
    def test_wide_ptes_shrink_clustered(self):
        result = fig10.run(workloads=SUBSET)
        for row in result.rows:
            by_series = dict(zip(result.headers[1:], row[1:]))
            assert by_series["clustered+subblock"] <= by_series["clustered+superpage"]
            assert by_series["clustered+superpage"] < by_series["clustered"]

    def test_dense_savings_reach_paper_levels(self):
        # coral: superpage PTEs cut clustered size by up to ~75-80%.
        result = fig10.run(workloads=("coral",))
        by_series = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert by_series["clustered+subblock"] < 0.25 * by_series["clustered"]

    def test_hashed_superpage_improves_but_loses(self):
        result = fig10.run(workloads=("coral",))
        by_series = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert by_series["hashed+superpage"] < 1.0
        assert by_series["clustered+subblock"] < by_series["hashed+superpage"]


class TestFig11:
    def test_11a_forward_mapped_pays_seven(self):
        result = fig11.run_subfigure("11a", workloads=("mp3d",),
                                     trace_length=TRACE_LENGTH)
        row = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert row["forward-mapped"] == pytest.approx(7.0)
        assert row["clustered"] < 1.3
        assert row["hashed"] >= 1.0

    def test_11b_hashed_degrades_clustered_does_not(self):
        result = fig11.run_subfigure("11b", workloads=("coral",),
                                     trace_length=TRACE_LENGTH)
        row = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert row["hashed-multi"] > 1.5   # double-probe penalty
        assert row["clustered"] < 1.2      # coresident wide PTEs

    def test_11c_partial_subblock_same_shape(self):
        result = fig11.run_subfigure("11c", workloads=("coral",),
                                     trace_length=TRACE_LENGTH)
        row = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert row["hashed-multi"] > 1.5
        assert row["clustered"] < 1.2

    def test_11d_hashed_pays_sixteen_probes(self):
        result = fig11.run_subfigure("11d", workloads=("mp3d",),
                                     trace_length=TRACE_LENGTH)
        row = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert row["hashed"] > 10.0
        assert row["clustered"] < 1.5
        assert row["linear-1lvl"] < 2.0


class TestTable2:
    def test_size_formulae_exact(self):
        result = table2.run(workloads=("mp3d",))
        for row in result.rows:
            case, metric, formula, simulated, ratio = row
            if metric == "size B":
                assert ratio == pytest.approx(1.0), case

    def test_access_formulae_close_under_uniform(self):
        result = table2.run(workloads=("mp3d",))
        for row in result.rows:
            case, metric, formula, simulated, ratio = row
            if metric == "lines/miss":
                assert 0.9 < ratio < 1.1, case


class TestSensitivity:
    def test_cache_line_sweep_shape(self):
        result = sensitivity.cache_line_sweep(
            workload_name="mp3d", probe_count=4_000
        )
        rows = result.by_label()
        # Smaller lines never cost fewer lines per lookup.
        for label, values in rows.items():
            assert values[0] >= values[1] >= values[2]
        # s=16 at 64B pays the ~0.6-line span penalty vs 256B.
        assert rows["s=16"][0] - rows["s=16"][2] > 0.3

    def test_subblock_factor_sweep_runs(self):
        result = sensitivity.subblock_factor_sweep(workload_name="gcc")
        ratios = [row[3] for row in result.rows]
        assert all(0 < ratio < 1.2 for ratio in ratios)

    def test_bucket_sweep_monotone(self):
        result = sensitivity.bucket_count_sweep(
            workload_name="mp3d", bucket_counts=(512, 2048, 8192),
            probe_count=4_000,
        )
        hashed_lines = [row[2] for row in result.rows]
        assert hashed_lines[0] >= hashed_lines[1] >= hashed_lines[2]
        for row in result.rows:
            assert row[4] <= row[2]  # clustered never worse than hashed

    def test_tlb_geometry_sweep(self):
        result = sensitivity.tlb_geometry_sweep(
            workload_name="gcc", trace_length=TRACE_LENGTH
        )
        misses = result.column("misses")
        # More fully-associative capacity never hurts...
        assert misses["FA-32"] >= misses["FA-64"] >= misses["FA-128"]
        # ...and a direct-mapped TLB of equal capacity conflicts badly.
        assert misses["SA-64x1"] > misses["FA-64"]

    def test_hash_quality_sweep(self):
        result = sensitivity.hash_quality_sweep(workload_name="mp3d",
                                                num_buckets=256)
        for row in result.rows:
            label, h_mean, h_max, c_mean, c_max = row
            # Clustering keeps chains about a subblock-factor shorter and
            # the worst chain bounded, under every hash.
            assert c_mean < h_mean
            assert c_max <= h_max

    def test_shared_vs_private_tables(self):
        result = sensitivity.shared_vs_private_tables(
            workload_name="gcc", trace_length=TRACE_LENGTH
        )
        for row in result.rows:
            label, shared_lines, shared_bytes, private_lines, private_bytes = row
            # §7's trade-off: private walks are no slower but cost one
            # bucket array per process.
            assert private_lines <= shared_lines
            assert private_bytes > shared_bytes
