"""Variable-subblock-factor clustered page tables ([Tall95] extension)."""

import pytest

from repro.addr.layout import AddressLayout
from repro.core.variable import VariableClusteredPageTable
from repro.errors import ConfigurationError, MappingExistsError, PageFaultError


class TestConstruction:
    def test_default_factors(self, layout):
        table = VariableClusteredPageTable(layout)
        assert table.factors == (16, 4, 1)

    def test_largest_factor_must_match_subblock(self, layout):
        with pytest.raises(ConfigurationError):
            VariableClusteredPageTable(layout, factors=(8, 4, 1))

    def test_factors_must_divide(self, layout):
        with pytest.raises(ConfigurationError):
            VariableClusteredPageTable(layout, factors=(16, 3))


class TestAllocationGranularity:
    def test_single_page_gets_smallest_node(self, layout):
        table = VariableClusteredPageTable(layout)
        table.insert(0x105, 0x9)
        assert table.node_count == 1
        assert table.size_bytes() == 16 + 8  # one-slot node

    def test_sparse_block_cheaper_than_fixed_factor(self, layout):
        # One isolated page: 24 bytes here vs 144 in the fixed-16 table.
        table = VariableClusteredPageTable(layout)
        table.insert(0x105, 0x9)
        assert table.size_bytes() < 144

    def test_filling_a_quad_coalesces(self, layout):
        table = VariableClusteredPageTable(layout)
        for i in range(4):
            table.insert(0x104 + i, i)
        assert table.node_count == 1
        assert table.size_bytes() == 16 + 8 * 4

    def test_filling_a_block_coalesces_to_full_node(self, layout):
        table = VariableClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, i)
        assert table.node_count == 1
        assert table.size_bytes() == 16 + 8 * 16

    def test_partial_fill_keeps_small_nodes(self, layout):
        table = VariableClusteredPageTable(layout)
        for i in (0, 5, 10, 15):  # four separate quads
            table.insert(0x100 + i, i)
        assert table.node_count == 4
        assert table.size_bytes() == 4 * 24


class TestLookup:
    def test_lookup_after_coalescing(self, layout):
        table = VariableClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        for i in range(16):
            assert table.lookup(0x100 + i).ppn == 0x400 + i

    def test_lookup_in_small_node(self, layout):
        table = VariableClusteredPageTable(layout)
        table.insert(0x107, 0x9)
        assert table.lookup(0x107).ppn == 0x9

    def test_miss_in_covered_range_faults(self, layout):
        table = VariableClusteredPageTable(layout)
        table.insert(0x104, 0x9)
        with pytest.raises(PageFaultError):
            table.lookup(0x105)  # same quad node, empty slot

    def test_duplicate_rejected(self, layout):
        table = VariableClusteredPageTable(layout)
        table.insert(0x104, 1)
        with pytest.raises(MappingExistsError):
            table.insert(0x104, 2)

    def test_block_fetch_merges_nodes(self, layout):
        table = VariableClusteredPageTable(layout)
        for i in (0, 1, 2, 3, 12):
            table.insert(0x100 + i, 0x400 + i)
        block = table.lookup_block(0x10)
        assert block.valid_mask == 0b0001000000001111


class TestRemoval:
    def test_remove_and_free(self, layout):
        table = VariableClusteredPageTable(layout)
        table.insert(0x104, 1)
        table.remove(0x104)
        assert table.node_count == 0
        with pytest.raises(PageFaultError):
            table.lookup(0x104)

    def test_remove_from_coalesced_node(self, layout):
        table = VariableClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, i)
        table.remove(0x103)
        with pytest.raises(PageFaultError):
            table.lookup(0x103)
        assert table.lookup(0x104).ppn == 4

    def test_remove_missing_faults(self, layout):
        with pytest.raises(PageFaultError):
            VariableClusteredPageTable(AddressLayout()).remove(1)
