"""Workload substrate: layouts, trace generators, and suite calibration."""

import numpy as np
import pytest

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError
from repro.workloads.suite import (
    PAPER_WORKLOADS,
    PROCESS_VA_STRIDE,
    load_workload,
)
from repro.workloads.synthetic import (
    RegionSpec,
    build_address_space,
    phased_trace,
    pointer_chase_trace,
    stride_trace,
    sweep_trace,
    working_set_trace,
)
from repro.workloads.trace import Trace


class TestRegionSpec:
    def test_rejects_bad_fill(self):
        with pytest.raises(ConfigurationError):
            RegionSpec("x", 0, 10, fill=0.0)
        with pytest.raises(ConfigurationError):
            RegionSpec("x", 0, 10, fill=1.5)

    def test_rejects_empty_region(self):
        with pytest.raises(ConfigurationError):
            RegionSpec("x", 0, 0)


class TestBuildAddressSpace:
    def test_dense_region_fully_mapped(self, layout):
        space = build_address_space([RegionSpec("r", 0x100, 64)], layout)
        assert len(space) == 64
        assert all(space.is_mapped(0x100 + i) for i in range(64))

    def test_partial_fill_approximates_fraction(self, layout):
        space = build_address_space(
            [RegionSpec("r", 0x100, 640, fill=0.5)], layout, seed=3
        )
        assert 0.35 * 640 < len(space) < 0.65 * 640

    def test_clustered_fill_is_bursty(self, layout):
        space = build_address_space(
            [RegionSpec("r", 0x100, 1600, fill=0.5)], layout, seed=3
        )
        # Bursty: mean block population well above the uniform-random
        # expectation for the same fill.
        assert space.mean_block_population() > 4

    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_clustered_fill_realizes_exact_fraction(self, layout, seed):
        # Regression: the old per-block binomial draws over/undershot the
        # target and the overshoot was truncated as `chosen[:keep]`,
        # silently dropping entire tail blocks.
        spec = RegionSpec("r", 0x100, 3200, fill=0.5)
        space = build_address_space([spec], layout, seed=seed)
        assert len(space) == round(3200 * 0.5)

    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_clustered_fill_has_no_low_address_bias(self, layout, seed):
        # Regression: truncation concentrated the mapped subset at low
        # addresses; both halves of the region must carry their share.
        spec = RegionSpec("r", 0x100, 3200, fill=0.5)
        space = build_address_space([spec], layout, seed=seed)
        vpns = np.asarray(space.vpns())
        midpoint = 0x100 + 1600
        low, high = (vpns < midpoint).sum(), (vpns >= midpoint).sum()
        assert high > 0.35 * len(vpns)
        assert abs(int(low) - int(high)) < 0.2 * len(vpns)

    def test_uniform_fill_is_sparser(self, layout):
        bursty = build_address_space(
            [RegionSpec("r", 0x100, 1600, fill=0.3)], layout, seed=3
        )
        uniform = build_address_space(
            [RegionSpec("r", 0x100, 1600, fill=0.3, clustered_fill=False)],
            layout, seed=3,
        )
        assert uniform.nactive(16) >= bursty.nactive(16)

    def test_segments_recorded(self, layout):
        space = build_address_space(
            [RegionSpec("text", 0x100, 8), RegionSpec("heap", 0x900, 8)],
            layout,
        )
        assert [seg.name for seg in space.segments] == ["text", "heap"]

    def test_reservation_allocator_places_blocks(self, layout):
        space = build_address_space([RegionSpec("r", 0x100, 64)], layout)
        # Dense in-order faulting with reservations: properly placed.
        for vpn, mapping in space.items():
            assert (vpn % 16) == (mapping.ppn % 16)


class TestTraceGenerators:
    @pytest.fixture
    def space(self, layout):
        return build_address_space([RegionSpec("r", 0x100, 128)], layout)

    def test_sweep_visits_everything(self, space):
        trace = sweep_trace(space, 256)
        assert len(trace) == 256
        assert set(trace.vpns.tolist()) == set(space.vpns())

    def test_sweep_repeat_scales_reuse(self, space):
        trace = sweep_trace(space, 256, repeat=4)
        stats = trace.stats()
        assert stats.reuse_factor == pytest.approx(4.0, rel=0.3)

    def test_sweep_segment_filter(self, layout):
        space = build_address_space(
            [RegionSpec("a", 0x100, 16), RegionSpec("b", 0x900, 16)], layout
        )
        trace = sweep_trace(space, 64, segment_names=["b"])
        assert all(v >= 0x900 for v in trace.vpns.tolist())

    def test_sweep_bad_segment_rejected(self, space):
        with pytest.raises(ConfigurationError):
            sweep_trace(space, 10, segment_names=["nope"])

    def test_stride_covers_all_phases(self, space):
        trace = stride_trace(space, 1024, stride_pages=4)
        assert set(trace.vpns.tolist()) == set(space.vpns())

    def test_stride_rejects_bad_params(self, space):
        with pytest.raises(ConfigurationError):
            stride_trace(space, 10, stride_pages=0)
        with pytest.raises(ConfigurationError):
            stride_trace(space, 10, repeat=0)

    def test_working_set_references_mapped_pages(self, space):
        trace = working_set_trace(space, 1000, working_set_pages=32, seed=1)
        assert set(trace.vpns.tolist()) <= set(space.vpns())

    def test_working_set_is_skewed(self, space):
        trace = working_set_trace(
            space, 5000, working_set_pages=64, churn=0.0, locality=1.5, seed=1
        )
        counts = np.bincount(trace.vpns - trace.vpns.min())
        top = np.sort(counts)[-8:].sum()
        assert top / len(trace) > 0.4  # hot head dominates

    def test_pointer_chase_subset(self, space):
        trace = pointer_chase_trace(space, 1000, hot_fraction=0.1, seed=1)
        assert len(set(trace.vpns.tolist())) <= max(1, int(128 * 0.1)) + 1

    def test_pointer_chase_rejects_bad_fraction(self, space):
        with pytest.raises(ConfigurationError):
            pointer_chase_trace(space, 10, hot_fraction=0.0)

    def test_phased_concatenates(self, space):
        a = sweep_trace(space, 100)
        b = sweep_trace(space, 50)
        combined = phased_trace([a, b])
        assert len(combined) == 150

    def test_empty_space_rejected(self, layout):
        from repro.addr.space import AddressSpace

        with pytest.raises(ConfigurationError):
            sweep_trace(AddressSpace(layout), 10)


class TestTraceContainer:
    def test_stats(self):
        trace = Trace([1, 2, 2, 17], subblock_factor=16)
        stats = trace.stats()
        assert stats.references == 4
        assert stats.unique_pages == 3
        assert stats.unique_blocks == 2

    def test_switch_points_validated(self):
        with pytest.raises(ConfigurationError):
            Trace([1, 2, 3], switch_points=[5, 2])

    def test_segments_split_on_switches(self):
        trace = Trace([1, 2, 3, 4], switch_points=[2])
        segments = list(trace.segments())
        assert len(segments) == 2
        assert segments[0][0] is False and segments[1][0] is True
        assert segments[1][1].tolist() == [3, 4]

    def test_head_clips_switches(self):
        trace = Trace(list(range(10)), switch_points=[3, 8])
        head = trace.head(5)
        assert len(head) == 5 and head.switch_points == (3,)

    def test_interleave_round_robin(self):
        a = Trace([1] * 4, name="a")
        b = Trace([2] * 4, name="b")
        merged = Trace.interleave([a, b], quantum=2)
        assert merged.vpns.tolist() == [1, 1, 2, 2, 1, 1, 2, 2]
        assert merged.switch_points == (2, 4, 6)

    def test_interleave_no_switch_for_lone_survivor(self):
        a = Trace([1] * 6, name="a")
        b = Trace([2] * 2, name="b")
        merged = Trace.interleave([a, b], quantum=2)
        # After b exhausts, consecutive a-chunks must not add switches.
        assert merged.switch_points == (2, 4)


class TestSuiteCalibration:
    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_footprint_matches_table1(self, name):
        workload = load_workload(name, with_trace=False)
        target_pages = PAPER_WORKLOADS[name].table1[4] * 1024 // 24
        ratio = workload.total_mapped_pages() / target_pages
        assert 0.85 < ratio < 1.15

    def test_multiprocess_spaces_disjoint(self):
        workload = load_workload("compress", with_trace=False)
        assert len(workload.spaces) == 2
        vpns0 = set(workload.spaces[0])
        vpns1 = set(workload.spaces[1])
        assert not (vpns0 & vpns1)
        assert max(vpns0) < PROCESS_VA_STRIDE

    def test_union_space_sums(self):
        workload = load_workload("compress", with_trace=False)
        union = workload.union_space()
        assert len(union) == workload.total_mapped_pages()

    def test_traces_reference_mapped_pages(self):
        workload = load_workload("gcc", trace_length=5_000)
        union = workload.union_space()
        assert all(union.is_mapped(int(v)) for v in workload.trace.vpns[:500])

    def test_multiproc_traces_have_switches(self):
        workload = load_workload("compress", trace_length=60_000)
        assert len(workload.trace.switch_points) >= 1

    def test_kernel_has_no_trace(self):
        assert load_workload("kernel").trace is None

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            load_workload("doom")

    def test_deterministic_given_seed(self):
        a = load_workload("mp3d", trace_length=2_000, seed=9)
        b = load_workload("mp3d", trace_length=2_000, seed=9)
        assert np.array_equal(a.trace.vpns, b.trace.vpns)
        assert sorted(a.spaces[0]) == sorted(b.spaces[0])
