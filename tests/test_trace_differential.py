"""Differential: traced cache-line totals ≡ what ``replay_misses`` charges.

The tracer's ``replay_lines`` total is built from the per-walk costs each
table charges to its :class:`~repro.pagetables.base.WalkStats`, while the
replay sums the ``cache_lines`` carried on the :class:`LookupResult`/
:class:`BlockLookupResult` objects it consumes — two independent paths
through the code.  Equality over whole miss streams pins the tracer's
accounting to the paper metric; the sabotage test proves a table whose
stats over-charge relative to its results cannot slip past the check.
"""

import pytest

from repro.analysis.metrics import make_table
from repro.experiments.common import TRACED_WORKLOADS
from repro.mmu.simulate import collect_misses, replay_misses
from repro.mmu.subblock_tlb import CompleteSubblockTLB
from repro.mmu.tlb import FullyAssociativeTLB
from repro.obs.trace import trace_walks, uninstall_tracer
from repro.os.translation_map import TranslationMap
from repro.pagetables.hashed import HashedPageTable
from repro.workloads.suite import load_workload


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


def single_stream(workload_name, trace_length=8_000):
    workload = load_workload(workload_name, trace_length=trace_length)
    tmap = TranslationMap.from_space(workload.union_space())
    stream = collect_misses(workload.trace, FullyAssociativeTLB(64), tmap)
    return stream, tmap


def traced_replay(stream, table, complete_subblock=False):
    with trace_walks(capacity=1024) as tracer:
        replay = replay_misses(
            stream, table, complete_subblock=complete_subblock
        )
    return replay, tracer


class TestTracedLinesMatchReplay:
    @pytest.mark.parametrize(
        "table_name", ("linear-1lvl", "forward-mapped", "hashed", "clustered")
    )
    def test_single_page_replay(self, table_name):
        stream, tmap = single_stream("mp3d")
        table = make_table(table_name)
        tmap.populate(table, base_pages_only=True)
        replay, tracer = traced_replay(stream, table)
        assert tracer.replay_lines == replay.cache_lines
        assert tracer.total_probes == replay.probes
        assert tracer.recorded == stream.misses  # one event per miss
        assert tracer.faults == replay.faults

    @pytest.mark.parametrize("name", TRACED_WORKLOADS)
    def test_every_paper_workload(self, name):
        stream, tmap = single_stream(name, trace_length=4_000)
        table = make_table("clustered")
        tmap.populate(table, base_pages_only=True)
        replay, tracer = traced_replay(stream, table)
        assert tracer.replay_lines == replay.cache_lines, name
        assert tracer.recorded == stream.misses

    @pytest.mark.parametrize("table_name", ("hashed", "clustered"))
    def test_complete_subblock_replay_with_block_events(self, table_name):
        workload = load_workload("mp3d", trace_length=8_000)
        tmap = TranslationMap.from_space(workload.union_space())
        stream = collect_misses(
            workload.trace, CompleteSubblockTLB(64, subblock_factor=16), tmap
        )
        table = make_table(table_name)
        tmap.populate(table, base_pages_only=True)
        replay, tracer = traced_replay(stream, table, complete_subblock=True)
        assert tracer.replay_lines == replay.cache_lines
        assert tracer.recorded == stream.misses
        block_events = sum(
            1 for event in tracer.events() if event.op == "block"
        )
        # The stream marks which misses replay as prefetching block walks;
        # the ring is big enough here to retain every event.
        assert tracer.dropped == 0
        assert block_events == int(stream.block_miss.sum())

    def test_ring_overflow_does_not_corrupt_totals(self):
        stream, tmap = single_stream("mp3d")
        table = make_table("hashed")
        tmap.populate(table, base_pages_only=True)
        with trace_walks(capacity=8) as tracer:  # far smaller than misses
            replay = replay_misses(stream, table)
        assert tracer.dropped == tracer.recorded - 8
        assert tracer.replay_lines == replay.cache_lines


class OverchargingHashed(HashedPageTable):
    """Sabotage: charges its stats three more lines than its results say."""

    def _walk(self, vpn):
        result, lines, probes = super()._walk(vpn)
        return result, lines + 3, probes


class TestSabotage:
    def test_overcharging_walk_is_detected(self):
        stream, tmap = single_stream("mp3d")
        table = OverchargingHashed()
        tmap.populate(table, base_pages_only=True)
        replay, tracer = traced_replay(stream, table)
        # The tracer sees the stats-charged costs, the replay sums the
        # result-carried costs: the discrepancy is exactly the sabotage.
        assert tracer.replay_lines != replay.cache_lines
        non_faulting = tracer.recorded - tracer.faults
        assert tracer.replay_lines == replay.cache_lines + 3 * non_faulting
