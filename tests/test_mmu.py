"""Integrated MMU: TLB + page table + miss handler."""

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import PageFaultError
from repro.mmu.mmu import MMU
from repro.mmu.subblock_tlb import CompleteSubblockTLB, PartialSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.pte import PTEKind


def full_block_table(layout, blocks=4):
    table = ClusteredPageTable(layout)
    for block in range(blocks):
        for i in range(16):
            table.insert(0x100 + block * 16 + i, 0x400 + block * 16 + i)
    return table


class TestBasicTranslation:
    def test_translate_returns_ppn(self, layout):
        mmu = MMU(FullyAssociativeTLB(4), full_block_table(layout))
        assert mmu.translate(0x105) == 0x405

    def test_hit_skips_page_table(self, layout):
        table = full_block_table(layout)
        mmu = MMU(FullyAssociativeTLB(4), table)
        mmu.translate(0x105)
        walks_after_first = table.stats.lookups
        mmu.translate(0x105)
        assert table.stats.lookups == walks_after_first
        assert mmu.stats.tlb_hits == 1

    def test_unmapped_raises(self, layout):
        mmu = MMU(FullyAssociativeTLB(4), full_block_table(layout))
        with pytest.raises(PageFaultError):
            mmu.translate(0x9999)
        assert mmu.stats.page_faults == 1

    def test_fault_handler_retries(self, layout):
        table = full_block_table(layout)
        mmu = MMU(
            FullyAssociativeTLB(4), table,
            fault_handler=lambda vpn: table.insert(vpn, 0xAAA),
        )
        assert mmu.translate(0x9999) == 0xAAA
        assert mmu.stats.page_faults == 1

    def test_stats_accumulate(self, layout):
        mmu = MMU(FullyAssociativeTLB(4), full_block_table(layout))
        for vpn in (0x100, 0x101, 0x102, 0x100):
            mmu.translate(vpn)
        assert mmu.stats.accesses == 4
        assert mmu.stats.tlb_misses == 3
        assert mmu.stats.lines_per_miss >= 1.0

    def test_flush_forces_misses(self, layout):
        mmu = MMU(FullyAssociativeTLB(4), full_block_table(layout))
        mmu.translate(0x100)
        mmu.flush_tlb()
        mmu.translate(0x100)
        assert mmu.stats.tlb_misses == 2


class TestSuperpageIntegration:
    def test_superpage_fill_covers_block(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        mmu = MMU(SuperpageTLB(4, page_sizes=(1, 16)), table)
        mmu.translate(0x100)
        for off in range(1, 16):
            assert mmu.translate(0x100 + off) == 0x400 + off
        assert mmu.stats.tlb_misses == 1  # one entry served the block
        assert mmu.stats.misses_by_kind[PTEKind.SUPERPAGE] == 1

    def test_single_page_tlb_downgrades_superpage(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        mmu = MMU(FullyAssociativeTLB(32), table)
        for off in range(16):
            mmu.translate(0x100 + off)
        assert mmu.stats.tlb_misses == 16  # one miss per page


class TestPartialSubblockIntegration:
    def test_psb_fill_covers_valid_pages(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_partial_subblock(0x10, 0b111, 0x400)
        mmu = MMU(PartialSubblockTLB(4, subblock_factor=16), table)
        assert mmu.translate(0x100) == 0x400
        assert mmu.translate(0x101) == 0x401
        assert mmu.translate(0x102) == 0x402
        assert mmu.stats.tlb_misses == 1


class TestCompleteSubblockIntegration:
    def test_prefetch_eliminates_subblock_misses(self, layout):
        table = full_block_table(layout, blocks=1)
        mmu = MMU(CompleteSubblockTLB(4, subblock_factor=16), table)
        for off in range(16):
            mmu.translate(0x100 + off)
        assert mmu.stats.tlb_misses == 1  # block miss prefetched the rest
        assert mmu.tlb.stats.subblock_misses == 0

    def test_without_prefetch_subblock_misses_remain(self, layout):
        table = full_block_table(layout, blocks=1)
        mmu = MMU(
            CompleteSubblockTLB(4, subblock_factor=16), table,
            prefetch_subblocks=False,
        )
        for off in range(16):
            mmu.translate(0x100 + off)
        assert mmu.stats.tlb_misses == 16
        assert mmu.tlb.stats.subblock_misses == 15

    def test_prefetch_from_hashed_costs_sixteen_probes(self, layout):
        # Figure 11d: hashed pays ~16 lines per block miss.
        table = HashedPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        mmu = MMU(CompleteSubblockTLB(4, subblock_factor=16), table)
        mmu.translate(0x105)
        assert mmu.stats.cache_lines >= 16

    def test_prefetch_from_clustered_costs_one_line(self, layout):
        table = full_block_table(layout, blocks=1)
        mmu = MMU(CompleteSubblockTLB(4, subblock_factor=16), table)
        mmu.translate(0x105)
        assert mmu.stats.cache_lines == 1

    def test_block_miss_fault_without_handler(self, layout):
        table = ClusteredPageTable(layout)
        mmu = MMU(CompleteSubblockTLB(4, subblock_factor=16), table)
        with pytest.raises(PageFaultError):
            mmu.translate(0x9999)

    def test_block_miss_fault_handler(self, layout):
        table = ClusteredPageTable(layout)
        mmu = MMU(
            CompleteSubblockTLB(4, subblock_factor=16), table,
            fault_handler=lambda vpn: table.insert(vpn, 0xBBB),
        )
        assert mmu.translate(0x9999) == 0xBBB

    def test_run_trace(self, layout):
        mmu = MMU(CompleteSubblockTLB(8, subblock_factor=16),
                  full_block_table(layout))
        stats = mmu.run_trace([0x100, 0x101, 0x110, 0x111, 0x100])
        assert stats.accesses == 5
        assert stats.tlb_misses == 2  # two blocks, prefetched
