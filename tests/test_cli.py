"""Command-line interface smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig42"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "doom"])

    def test_kernel_excluded_from_compare(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "kernel"])


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "coral" in out and "kernel" in out

    def test_describe(self, capsys):
        assert main(["describe", "mp3d"]) == 0
        out = capsys.readouterr().out
        assert "mapped pages" in out and "clustered" in out

    def test_compare(self, capsys):
        assert main(["compare", "mp3d"]) == 0
        out = capsys.readouterr().out
        assert "lines/miss" in out and "clustered" in out

    def test_experiment_multisize(self, capsys):
        assert main(["experiment", "multisize"]) == 0
        out = capsys.readouterr().out
        assert "two-clustered" in out
