"""Forward-mapped page tables: tree walks and intermediate superpages."""

import pytest

from repro.addr.layout import AddressLayout
from repro.errors import (
    AlignmentError,
    ConfigurationError,
    MappingExistsError,
    PageFaultError,
)
from repro.pagetables.forward import DEFAULT_LEVEL_BITS, ForwardMappedPageTable
from repro.pagetables.pte import PTEKind


class TestConstruction:
    def test_default_seven_levels(self, layout):
        table = ForwardMappedPageTable(layout)
        assert table.levels == 7
        assert sum(table.level_bits) == 52

    def test_rejects_wrong_bit_total(self, layout):
        with pytest.raises(ConfigurationError):
            ForwardMappedPageTable(layout, level_bits=(9, 9, 9))

    def test_rejects_zero_bits(self, layout):
        with pytest.raises(ConfigurationError):
            ForwardMappedPageTable(layout, level_bits=(0, 26, 26))

    def test_rejects_unknown_strategy(self, layout):
        with pytest.raises(ConfigurationError):
            ForwardMappedPageTable(layout, superpage_strategy="magic")

    def test_entry_coverage_decreasing(self, layout):
        table = ForwardMappedPageTable(layout)
        coverages = [table.entry_coverage(i) for i in range(7)]
        assert coverages[-1] == 1
        assert all(a > b for a, b in zip(coverages, coverages[1:]))


class TestBasicOperation:
    def test_insert_lookup(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(0x12345, 0x678)
        result = table.lookup(0x12345)
        assert result.ppn == 0x678
        assert result.cache_lines == 7  # one access per level

    def test_distant_vpns_do_not_interfere(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(0, 1)
        table.insert((1 << 52) - 1, 2)
        assert table.lookup(0).ppn == 1
        assert table.lookup((1 << 52) - 1).ppn == 2

    def test_miss_stops_at_missing_subtree(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(0, 1)
        with pytest.raises(PageFaultError):
            table.lookup(1 << 51)
        # The walk discovered the absence at the root: one line.
        assert table.stats.cache_lines == 1

    def test_miss_in_populated_leaf(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(0x100, 1)
        with pytest.raises(PageFaultError):
            table.lookup(0x101)
        assert table.stats.cache_lines == 7

    def test_duplicate_rejected(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(1, 1)
        with pytest.raises(MappingExistsError):
            table.insert(1, 2)

    def test_remove(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(1, 1)
        table.remove(1)
        with pytest.raises(PageFaultError):
            table.lookup(1)


class TestSize:
    def test_empty_table_has_root_only(self, layout):
        table = ForwardMappedPageTable(layout)
        root_fanout = 1 << DEFAULT_LEVEL_BITS[0]
        assert table.size_bytes() == root_fanout * 8

    def test_one_mapping_allocates_full_path(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(0, 0)
        expected = sum((1 << bits) * 8 for bits in DEFAULT_LEVEL_BITS)
        assert table.size_bytes() == expected

    def test_neighbours_share_path(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert(0, 0)
        before = table.size_bytes()
        table.insert(1, 1)
        assert table.size_bytes() == before


class TestReplicateStrategy:
    def test_superpage_replicated(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        result = table.lookup(0x10F)
        assert result.kind is PTEKind.SUPERPAGE
        assert result.ppn == 0x40F

    def test_partial_subblock_replicated(self, layout):
        table = ForwardMappedPageTable(layout)
        table.insert_partial_subblock(0x10, 0b11, 0x400)
        assert table.lookup(0x101).valid_mask == 0b11
        with pytest.raises(PageFaultError):
            table.lookup(0x102)


class TestIntermediateStrategy:
    def test_subtree_sized_superpage_at_intermediate_node(self, layout):
        table = ForwardMappedPageTable(layout, superpage_strategy="intermediate")
        npages = table.entry_coverage(5)  # leaf-parent entries (256 pages)
        table.insert_superpage(0, npages, 0)
        result = table.lookup(npages // 2)
        assert result.kind is PTEKind.SUPERPAGE
        assert result.npages == npages
        # The walk stopped at level 5 (6 accesses, not 7).
        assert result.cache_lines == 6

    def test_non_subtree_size_rejected(self, layout):
        table = ForwardMappedPageTable(layout, superpage_strategy="intermediate")
        with pytest.raises(AlignmentError):
            table.insert_superpage(0, 16, 0)  # 16 pages matches no level

    def test_conflicting_subtree_rejected(self, layout):
        table = ForwardMappedPageTable(layout, superpage_strategy="intermediate")
        npages = table.entry_coverage(5)
        table.insert(0, 1)  # allocates the subtree
        with pytest.raises(MappingExistsError):
            table.insert_superpage(0, npages, 0)


class TestBlockLookup:
    def test_block_fetch_adjacent_leaf_ptes(self, layout):
        # §4.4: forward-mapped block prefetch is reasonable because the
        # mappings reside in adjacent leaf memory.
        table = ForwardMappedPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        block = table.lookup_block(0x10)
        assert block.valid_mask == 0xFFFF
        assert block.cache_lines == 7  # tree walk; block read fits a line
