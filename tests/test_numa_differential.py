"""NUMA-off ⇒ zero drift: the single-node machine is the flat simulator.

The subsystem's backbone invariant: with the 1-node topology (or no
topology at all) every NUMA-aware path must reproduce the flat §6.1
numbers *exactly* — same ``cache_lines``, same figure rows, same stream
cache keys — and latency weighting degenerates to ``lines x 90``.
Multi-node machines may reweight walks but never change what they touch.
"""

import pytest

from repro.analysis.metrics import make_table
from repro.cache.stream_cache import stream_cache_key
from repro.experiments import fig11
from repro.experiments.common import (
    get_miss_stream,
    get_translation_map,
    get_workload,
    single_page_tlb,
)
from repro.mmu.mmu import MMU
from repro.mmu.simulate import replay_misses
from repro.mmu.tlb import FullyAssociativeTLB
from repro.numa.costing import WalkCoster
from repro.numa.placement import FirstTouchPlacement
from repro.numa.policy import POLICY_NAMES, make_policy
from repro.numa.replay import replay_misses_numa
from repro.numa.topology import LOCAL_CYCLES, PRESETS, SINGLE_NODE

TRACE_LENGTH = 20_000
TABLES = ("linear-1lvl", "hashed", "clustered")


@pytest.fixture(scope="module")
def workload():
    return get_workload("mp3d", TRACE_LENGTH)


@pytest.fixture(scope="module")
def stream(workload):
    return get_miss_stream(workload, "single")


def fresh_table(name, workload):
    table = make_table(name, workload.layout)
    get_translation_map(workload, "single").populate(
        table, base_pages_only=True
    )
    return table


# ---------------------------------------------------------------------------
# Replay parity
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", TABLES)
def test_single_node_replay_matches_flat_exactly(name, workload, stream):
    flat = replay_misses(stream, fresh_table(name, workload))
    for topology in (None, SINGLE_NODE, "1-node"):
        numa = replay_misses_numa(
            stream, fresh_table(name, workload), topology=topology
        )
        assert numa.cache_lines == flat.cache_lines
        assert numa.faults == flat.faults
        assert numa.misses == flat.misses
        assert numa.numa.cycles == numa.cache_lines * LOCAL_CYCLES
        assert numa.lines_per_miss == flat.lines_per_miss


@pytest.mark.parametrize("name", TABLES)
def test_lines_are_location_blind_on_any_machine(name, workload, stream):
    """Placement reweights walks; it never changes what they touch."""
    flat = replay_misses(stream, fresh_table(name, workload))
    for policy in POLICY_NAMES:
        numa = replay_misses_numa(
            stream, fresh_table(name, workload),
            topology=PRESETS["4-node"], policy=policy,
        )
        assert numa.cache_lines == flat.cache_lines, (name, policy)


def test_single_node_policies_all_degenerate(workload, stream):
    costs = {
        policy: replay_misses_numa(
            stream, fresh_table("hashed", workload),
            topology=SINGLE_NODE, policy=policy,
        ).cycles_per_miss
        for policy in POLICY_NAMES
    }
    assert len(set(costs.values())) == 1


# ---------------------------------------------------------------------------
# Integrated MMU path
# ---------------------------------------------------------------------------
def test_mmu_with_single_node_coster_keeps_stats_identical(workload):
    trace = workload.trace.vpns[:5000]

    def run(attach):
        table = fresh_table("hashed", workload)
        if attach:
            placement = FirstTouchPlacement(SINGLE_NODE, node=0)
            table.attach_numa(WalkCoster(make_policy("none", placement)))
        mmu = MMU(FullyAssociativeTLB(64), table)
        for vpn in trace:
            mmu.translate(int(vpn))
        return mmu.stats

    plain, attached = run(False), run(True)
    assert attached.cache_lines == plain.cache_lines
    assert attached.tlb_misses == plain.tlb_misses
    assert attached.tlb_hits == plain.tlb_hits
    assert plain.numa_cycles == 0 and not plain.lines_by_node
    assert attached.numa_cycles == attached.cache_lines * LOCAL_CYCLES
    assert dict(attached.lines_by_node) == {0: attached.cache_lines}
    assert attached.cycles_per_miss == pytest.approx(
        attached.lines_per_miss * LOCAL_CYCLES
    )


# ---------------------------------------------------------------------------
# Artefact stability: cache keys and figure rows
# ---------------------------------------------------------------------------
def test_stream_cache_key_unaffected_by_numa_activity(workload):
    tmap = get_translation_map(workload, "single")
    tlb = single_page_tlb()
    before = stream_cache_key(workload.trace, tlb, tmap, True)
    replay_misses_numa(
        get_miss_stream(workload, "single"),
        fresh_table("clustered", workload),
        topology=PRESETS["4-node"], policy="mitosis",
    )
    after = stream_cache_key(workload.trace, single_page_tlb(), tmap, True)
    assert after == before


@pytest.mark.slow
def test_fig11a_rows_identical_around_numa_replays(workload, stream):
    first = fig11.run_subfigure(
        "11a", trace_length=TRACE_LENGTH, workloads=("mp3d",)
    )
    for policy in POLICY_NAMES:
        replay_misses_numa(
            stream, fresh_table("hashed", workload),
            topology=PRESETS["8-node"], policy=policy,
        )
    second = fig11.run_subfigure(
        "11a", trace_length=TRACE_LENGTH, workloads=("mp3d",)
    )
    assert first.headers == second.headers
    assert first.rows == second.rows
