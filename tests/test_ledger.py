"""Cross-run benchmark ledger: ingestion, noise bands, the family gate.

Pins the two ingestion invariants (`repro.obs.ledger`'s docstring):
jobs-invariance — a ``--jobs 1`` and a ``--jobs N`` bench document
flatten to byte-identical rows under one stamp — and idempotence —
re-appending an already-ingested (document, stamp) pair is a no-op.
On top: band math, improvement-event resets, torn-tail tolerance, and
a sabotage pass proving a doctored regression trips
``bench_gate.py --family ... --ledger`` both through noise bands and
through the committed-baseline fallback.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.ledger import (
    BenchLedger,
    GATED_METRICS,
    LedgerEvent,
    LedgerRow,
    Stamp,
    compute_run_id,
    default_ledger_path,
    expected_task_seconds,
    noise_band,
    rows_from_bench,
    rows_from_run_dir,
)
from repro.resilience.journal import METRICS_NAME, REPORT_SIDECAR_NAME


def _load_bench_gate():
    path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks" / "bench_gate.py"
    )
    spec = importlib.util.spec_from_file_location("bench_gate", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


NUMA_DOC = {
    "benchmark": "numa",
    "trace_length": 1000,
    "seed": 7,
    "configs": [
        {
            "workload/table": "mp3d/x86_64",
            "nodes": 4,
            "none cyc/miss": 100.0,
            "mitosis cyc/miss": 80.0,
            "migrate cyc/miss": 90.0,
            "local_fraction": 0.75,
        },
    ],
}

TENANCY_DOC = {
    "benchmark": "tenancy",
    "trace_length": 1000,
    "configs": [
        {
            "config": "100t/churn",
            "tenants": 100,
            "footprint_mb": 8,
            "p50_cycles": 40.0,
            "p95_cycles": 60.0,
            "p99_cycles": 80.0,
            "worst_tenant_p99": 90.0,
            "lines_per_miss": 1.5,
        },
    ],
}


class TestFlattening:
    def test_numa_rows_carry_config_metric_and_stamp(self):
        rows = rows_from_bench(
            NUMA_DOC, stamp=Stamp(git_sha="abc", engine="batch", jobs=2)
        )
        by_key = {(r.config, r.metric): r for r in rows}
        row = by_key[("mp3d/x86_64/4n", "mitosis cyc/miss")]
        assert row.value == 80.0
        assert row.family == "numa"
        assert row.trace_length == 1000
        assert (row.git_sha, row.engine, row.jobs) == ("abc", "batch", 2)
        # The seed is content-derived from the document.
        assert row.seed == 7
        # The grouping column is identity, not a metric.
        assert ("mp3d/x86_64/4n", "nodes") not in by_key
        # One document ingest = one run_id.
        assert len({r.run_id for r in rows}) == 1

    def test_batch_rows_split_aggregates_from_configs(self):
        doc = {
            "benchmark": "batch",
            "trace_length": 500,
            "aggregate_speedup": 40.0,
            "scalar_ms": 800.0,
            "batch_ms": 20.0,
            "configs": [
                {"workload": "gcc", "tlb": "direct", "table": "hashed",
                 "speedup": 35.0, "scalar_ms": 100.0, "batch_ms": 3.0},
            ],
        }
        rows = rows_from_bench(doc)
        by_key = {(r.config, r.metric): r.value for r in rows}
        assert by_key[("*", "aggregate_speedup")] == 40.0
        assert by_key[("gcc/direct/hashed", "speedup")] == 35.0

    def test_tenancy_and_modern_rows(self):
        tenancy = {
            (r.config, r.metric): r.value for r in rows_from_bench(TENANCY_DOC)
        }
        assert tenancy[("100t/churn", "p99_cycles")] == 80.0
        assert ("100t/churn", "tenants") not in tenancy
        modern_doc = {
            "benchmark": "modern",
            "trace_length": 2000,
            "configs": [
                {"config": "kv/4gb", "footprint_mb": 4096.0,
                 "lines_per_miss": 1.2, "size_vs_hashed": 0.9,
                 "tables": [
                     {"table": "x86_64", "lines_per_miss": 3.0},
                 ]},
            ],
        }
        modern = {
            (r.config, r.metric): r.value for r in rows_from_bench(modern_doc)
        }
        assert modern[("kv/4gb", "size_vs_hashed")] == 0.9
        assert modern[("kv/4gb/x86_64", "lines_per_miss")] == 3.0

    def test_unknown_family_is_rejected(self):
        with pytest.raises(ValueError, match="unknown bench family"):
            rows_from_bench({"benchmark": "nope"})

    def test_gated_metrics_exist_in_flattened_rows(self):
        """Every gated numa/tenancy metric actually appears when present."""
        for doc, family in ((NUMA_DOC, "numa"), (TENANCY_DOC, "tenancy")):
            metrics = {r.metric for r in rows_from_bench(doc)}
            assert set(GATED_METRICS[family]) <= metrics


class TestJobsInvariance:
    def test_bench_modern_rows_identical_across_jobs(self):
        bench = pytest.importorskip(
            "benchmarks.bench_modern",
            reason="benchmarks/ requires the repository root on sys.path",
        )
        stamp = Stamp(git_sha="abc123", engine="batch")
        serialized = {}
        for jobs in (1, 4):
            doc = bench.collect(trace_length=2_000, footprints=(2,), jobs=jobs)
            rows = rows_from_bench(doc, stamp=stamp)
            serialized[jobs] = json.dumps(
                [r.as_dict() for r in rows], sort_keys=True
            )
        assert serialized[1] == serialized[4]

    def test_run_id_excludes_recorded_at(self):
        early = Stamp(git_sha="abc", recorded_at=1.0)
        late = Stamp(git_sha="abc", recorded_at=9999.0)
        assert compute_run_id("numa", NUMA_DOC, early) == compute_run_id(
            "numa", NUMA_DOC, late
        )
        assert compute_run_id(
            "numa", NUMA_DOC, Stamp(git_sha="other")
        ) != compute_run_id("numa", NUMA_DOC, early)


class TestNoiseBand:
    def test_band_geometry_and_classification(self):
        band = noise_band([10.0, 10.0, 10.1, 9.9], k=4.0, rel_floor=0.01)
        assert band.median == pytest.approx(10.0)
        assert band.lo < 10.0 < band.hi
        assert band.classify(band.hi + 1.0, "lower") == "regression"
        assert band.classify(band.lo - 1.0, "lower") == "improvement"
        # Higher-is-better mirrors the verdicts.
        assert band.classify(band.hi + 1.0, "higher") == "improvement"
        assert band.classify(band.lo - 1.0, "higher") == "regression"
        assert band.classify(10.0, "lower") == "ok"

    def test_deterministic_series_keeps_relative_floor(self):
        band = noise_band([100.0] * 5, rel_floor=0.01)
        assert band.mad == 0.0
        assert (band.lo, band.hi) == (99.0, 101.0)

    def test_robust_to_single_outlier(self):
        calm = noise_band([10.0, 10.1, 9.9, 10.0, 10.05])
        spiked = noise_band([10.0, 10.1, 9.9, 10.0, 1000.0])
        # One wild run widens a std-dev band ~400x; MAD barely moves.
        assert spiked.hi < calm.hi * 2

    def test_direction_validated(self):
        band = noise_band([1.0, 1.0, 1.0])
        with pytest.raises(ValueError, match="lower|higher"):
            band.classify(1.0, "sideways")

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            noise_band([])


class TestLedgerFile:
    def _rows(self, value, jobs):
        stamp = Stamp(jobs=jobs)
        doc = dict(NUMA_DOC)
        doc["configs"] = [dict(NUMA_DOC["configs"][0])]
        doc["configs"][0]["none cyc/miss"] = value
        return rows_from_bench(doc, stamp=stamp)

    def test_round_trip_and_duplicate_skip(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        rows = self._rows(100.0, jobs=1)
        assert ledger.append_rows(rows) == len(rows)
        # Same (document, stamp): idempotent.
        assert ledger.append_rows(rows) == 0
        # Different stamp: new history.
        assert ledger.append_rows(self._rows(100.0, jobs=2)) > 0
        state = ledger.load()
        assert len(state.runs) == 2
        assert state.history(
            "numa", "mp3d/x86_64/4n", "none cyc/miss"
        ) == [100.0, 100.0]
        loaded = state.rows[0]
        assert isinstance(loaded, LedgerRow)
        assert loaded.trace_length == 1000

    def test_mixed_run_ids_rejected(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        mixed = self._rows(100.0, jobs=1) + self._rows(100.0, jobs=2)
        with pytest.raises(ValueError, match="one run_id"):
            ledger.append_rows(mixed)

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = BenchLedger(path)
        ledger.append_rows(self._rows(100.0, jobs=1))
        with path.open("a") as handle:
            handle.write('{"row": {"version": 1, "family": "nu')  # torn
        state = ledger.load()
        assert state.torn_lines == 1
        assert len(state.rows) == len(self._rows(100.0, jobs=1))

    def test_incompatible_version_counted_not_loaded(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        row = LedgerRow("numa", "c", "m", 1.0, run_id="x").as_dict()
        row["version"] = 999
        path.write_text(json.dumps({"row": row}) + "\n")
        state = BenchLedger(path).load()
        assert state.incompatible == 1
        assert state.rows == []

    def test_improvement_event_resets_band_history(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        for jobs, value in enumerate((100.0, 100.0, 100.0, 100.0), start=1):
            ledger.append_rows(self._rows(value, jobs=jobs))
        key = ("numa", "mp3d/x86_64/4n", "none cyc/miss")
        state = ledger.load()
        assert state.band_for(*key).median == 100.0
        # A recorded speedup resets expectations...
        ledger.append_event(LedgerEvent(
            kind="improvement", family=key[0], config=key[1], metric=key[2],
            old=100.0, new=50.0,
        ))
        for jobs in (11, 12, 13):
            ledger.append_rows(self._rows(50.0, jobs=jobs))
        state = ledger.load()
        assert state.history(*key) == [50.0, 50.0, 50.0]
        assert state.band_for(*key).median == 50.0
        # ...while the full series stays queryable for trends.
        assert state.history(*key, since_reset=False) == [100.0] * 4 + [50.0] * 3
        # Other keys are untouched by the reset.
        other = ("numa", "mp3d/x86_64/4n", "mitosis cyc/miss")
        assert len(state.history(*other)) == 7

    def test_history_filters_by_trace_length(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        ledger.append_rows(self._rows(100.0, jobs=1))
        long_doc = dict(NUMA_DOC)
        long_doc["trace_length"] = 9999
        ledger.append_rows(rows_from_bench(long_doc, stamp=Stamp(jobs=9)))
        state = ledger.load()
        key = ("numa", "mp3d/x86_64/4n", "none cyc/miss")
        assert state.history(*key, trace_length=1000) == [100.0]
        assert len(state.history(*key)) == 2


class TestRunDirIngestion:
    def test_metrics_and_sidecar_flatten(self, tmp_path):
        (tmp_path / METRICS_NAME).write_text(json.dumps({
            "run": {
                "jobs": 2, "engine": "batch", "wall_seconds": 12.5,
                "utilisation": 0.8,
                "timings": [
                    {"experiment": "fig9", "seconds": 4.0,
                     "cache_hits": 1, "cache_computed": 2},
                ],
            },
        }))
        (tmp_path / REPORT_SIDECAR_NAME).write_text(json.dumps({
            "walk_profile": {
                "x86_64": {"walks": 100, "faults": 3,
                           "total_lines": 400, "total_probes": 100},
            },
        }))
        rows = rows_from_run_dir(tmp_path)
        by_key = {(r.family, r.config, r.metric): r for r in rows}
        assert by_key[("run", "*", "wall_seconds")].value == 12.5
        assert by_key[("run", "fig9", "seconds")].value == 4.0
        assert by_key[("run", "*", "wall_seconds")].engine == "batch"
        assert by_key[("run", "*", "wall_seconds")].jobs == 2
        assert by_key[("profile", "x86_64", "total_lines")].value == 400.0

    def test_missing_run_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            rows_from_run_dir(tmp_path / "nope")

    def test_expected_task_seconds_is_median_history(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.jsonl")
        for jobs, seconds in ((1, 4.0), (2, 6.0), (3, 5.0)):
            run_id = f"run-{jobs}"
            ledger.append_rows([LedgerRow(
                "run", "fig9", "seconds", seconds, run_id=run_id,
            )])
        state = ledger.load()
        assert expected_task_seconds(state, ["fig9", "fig10"]) == {
            "fig9": 5.0
        }

    def test_default_ledger_path_precedence(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert default_ledger_path() is None
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "ledger.jsonl").write_text("")
        assert default_ledger_path(run_dir) == run_dir / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "override.jsonl"))
        assert default_ledger_path(run_dir) == tmp_path / "override.jsonl"


class TestGateSabotage:
    """A doctored regression must trip the family gate, both paths."""

    def _doctor(self, tmp_path, factor):
        doc = json.loads(json.dumps(TENANCY_DOC))
        doc["configs"][0]["p99_cycles"] *= factor
        path = tmp_path / "BENCH_tenancy_fresh.json"
        path.write_text(json.dumps(doc))
        return path

    @pytest.fixture()
    def baseline_dir(self, tmp_path):
        directory = tmp_path / "baselines"
        directory.mkdir()
        (directory / "BENCH_tenancy.json").write_text(json.dumps(TENANCY_DOC))
        return directory

    def test_band_gate_trips_on_doctored_regression(
        self, tmp_path, baseline_dir, capsys
    ):
        gate = _load_bench_gate()
        ledger_path = tmp_path / "ledger.jsonl"
        ledger = BenchLedger(ledger_path)
        for jobs in (1, 2, 3):
            ledger.append_rows(
                rows_from_bench(TENANCY_DOC, stamp=Stamp(jobs=jobs))
            )
        doctored = self._doctor(tmp_path, 1.5)
        rc = gate.main([
            "--family", f"tenancy={doctored}",
            "--ledger", str(ledger_path),
            "--baseline-dir", str(baseline_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out and "p99_cycles" in out
        assert "outside band" in out

    def test_baseline_fallback_trips_without_history(
        self, tmp_path, baseline_dir, capsys
    ):
        gate = _load_bench_gate()
        doctored = self._doctor(tmp_path, 1.5)
        rc = gate.main([
            "--family", f"tenancy={doctored}",
            "--ledger", str(tmp_path / "empty.jsonl"),
            "--baseline-dir", str(baseline_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out and "baseline-gated" not in out.split(
            "REGRESSION"
        )[0]

    def test_clean_document_passes_and_records(
        self, tmp_path, baseline_dir, capsys
    ):
        gate = _load_bench_gate()
        ledger_path = tmp_path / "ledger.jsonl"
        fresh = tmp_path / "BENCH_tenancy_fresh.json"
        fresh.write_text(json.dumps(TENANCY_DOC))
        rc = gate.main([
            "--family", f"tenancy={fresh}",
            "--ledger", str(ledger_path), "--record",
            "--baseline-dir", str(baseline_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tenancy OK" in out
        assert "recorded" in out
        assert BenchLedger(ledger_path).load().rows

    def test_improvement_records_band_resetting_event(
        self, tmp_path, baseline_dir, capsys
    ):
        gate = _load_bench_gate()
        ledger_path = tmp_path / "ledger.jsonl"
        improved = self._doctor(tmp_path, 0.5)
        rc = gate.main([
            "--family", f"tenancy={improved}",
            "--ledger", str(ledger_path),
            "--baseline-dir", str(baseline_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "improvement" in out
        events = BenchLedger(ledger_path).load().events
        assert any(
            e.kind == "improvement" and e.metric == "p99_cycles"
            for e in events
        )

    def test_trace_length_mismatch_disables_baseline(
        self, tmp_path, baseline_dir, capsys
    ):
        gate = _load_bench_gate()
        doc = json.loads(json.dumps(TENANCY_DOC))
        doc["trace_length"] = 777
        doc["configs"][0]["p99_cycles"] *= 10  # would trip if gated
        fresh = tmp_path / "BENCH_tenancy_fresh.json"
        fresh.write_text(json.dumps(doc))
        rc = gate.main([
            "--family", f"tenancy={fresh}",
            "--ledger", str(tmp_path / "empty.jsonl"),
            "--baseline-dir", str(baseline_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baseline fallback disabled" in out
        assert "ungated" in out
