"""Result-set diffing across runs."""

import pytest

from repro.analysis.compare import diff_results, main, render_diff
from repro.analysis.export import write_json
from repro.experiments.common import ExperimentResult


def doc(value):
    return {
        "fig9": {
            "experiment": "Figure 9",
            "headers": ["workload", "hashed", "clustered"],
            "rows": [["coral", 1.0, value]],
            "notes": "",
        }
    }


class TestDiff:
    def test_identical_documents_clean(self):
        assert diff_results(doc(0.38), doc(0.38)) == []

    def test_drift_detected(self):
        drifts = diff_results(doc(0.38), doc(0.50))
        assert len(drifts) == 1
        experiment, label, column, old, new, change = drifts[0]
        assert (experiment, label, column) == ("fig9", "coral", "clustered")
        assert old == 0.38 and new == 0.50
        assert change == pytest.approx((0.50 - 0.38) / 0.38, abs=1e-4)

    def test_tolerance_suppresses_noise(self):
        assert diff_results(doc(0.380), doc(0.383), tolerance=0.02) == []
        assert diff_results(doc(0.380), doc(0.383), tolerance=0.001)

    def test_structural_changes_reported(self):
        old = doc(0.38)
        new = dict(doc(0.38), extra={"experiment": "X", "headers": ["w"],
                                     "rows": [], "notes": ""})
        drifts = diff_results(old, new)
        assert any("added" in row[1] for row in drifts)

    def test_row_changes_reported(self):
        old = doc(0.38)
        new = doc(0.38)
        new["fig9"]["rows"].append(["gcc", 1.0, 0.5])
        drifts = diff_results(old, new)
        assert any("gcc" in row[1] for row in drifts)

    def test_non_numeric_cells_ignored(self):
        old = doc(0.38)
        new = doc(0.38)
        old["fig9"]["rows"][0][1] = "n/a"
        new["fig9"]["rows"][0][1] = "other"
        assert diff_results(old, new) == []


class TestCLI:
    def write(self, tmp_path, name, value):
        result = ExperimentResult(
            experiment="Figure 9",
            headers=["workload", "hashed", "clustered"],
            rows=[["coral", 1.0, value]],
        )
        return str(write_json({"fig9": result}, str(tmp_path / name)))

    def test_clean_exit_zero(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", 0.38)
        b = self.write(tmp_path, "b.json", 0.38)
        assert main([a, b]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_drift_exit_one(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", 0.38)
        b = self.write(tmp_path, "b.json", 0.55)
        assert main([a, b]) == 1
        out = capsys.readouterr().out
        assert "clustered" in out and "drifted" in out


def test_render_diff_empty():
    assert "no drift" in render_diff([])
