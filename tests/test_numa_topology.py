"""The NUMA machine model: topologies, placements, node-aware allocation."""

import json

import pytest

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError
from repro.numa.placement import (
    DEFAULT_LINE_SIZE,
    FirstTouchPlacement,
    InterleavedPlacement,
)
from repro.numa.topology import (
    LOCAL_CYCLES,
    ONE_HOP_CYCLES,
    PRESETS,
    SINGLE_NODE,
    TWO_HOP_CYCLES,
    NumaTopology,
    get_topology,
    render_latency_matrix,
)
from repro.os.physmem import FrameAllocator, ReservationAllocator


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------
def test_presets_cover_the_sweep():
    assert set(PRESETS) == {"1-node", "2-node", "4-node", "8-node"}
    for name, preset in PRESETS.items():
        assert preset.num_nodes == int(name.split("-")[0])
        assert preset.total_frames == sum(preset.node_frames)
        for node in range(preset.num_nodes):
            assert preset.access_cycles(node, node) == LOCAL_CYCLES


def test_single_node_is_all_local():
    assert SINGLE_NODE.is_single_node()
    assert SINGLE_NODE.access_cycles(0, 0) == LOCAL_CYCLES
    assert not PRESETS["2-node"].is_single_node()


def test_eight_node_preset_has_two_hop_groups():
    """The 8-socket machine is two fully-connected 4-node groups."""
    topo = PRESETS["8-node"]
    assert topo.access_cycles(0, 1) == ONE_HOP_CYCLES
    assert topo.access_cycles(0, 4) == TWO_HOP_CYCLES
    assert topo.access_cycles(5, 6) == ONE_HOP_CYCLES
    assert topo.access_cycles(7, 2) == TWO_HOP_CYCLES


def test_node_of_frame_contiguous_split():
    topo = PRESETS["4-node"]
    per_node = topo.node_frames[0]
    assert topo.node_of_frame(0) == 0
    assert topo.node_of_frame(per_node - 1) == 0
    assert topo.node_of_frame(per_node) == 1
    assert topo.node_of_frame(topo.total_frames - 1) == 3
    # Past-the-end PPNs clamp to the last node (costing never crashes).
    assert topo.node_of_frame(topo.total_frames + 5) == 3


def test_validation_rejects_malformed_machines():
    with pytest.raises(ConfigurationError):
        NumaTopology("bad", (), ())
    with pytest.raises(ConfigurationError):
        NumaTopology("bad", (16, 16), ((90,),))  # not 2x2
    with pytest.raises(ConfigurationError):
        NumaTopology("bad", (16, 16), ((90, 50), (150, 90)))  # remote<local
    with pytest.raises(ConfigurationError):
        NumaTopology("bad", (16, 0), ((90, 150), (150, 90)))  # empty node


def test_json_round_trip_and_pointed_errors(tmp_path):
    topo = PRESETS["2-node"]
    again = NumaTopology.from_json(topo.to_json())
    assert again == topo

    doc = json.loads(topo.to_json())
    doc["latency"] = [[90]]
    with pytest.raises(ConfigurationError, match="2x2"):
        NumaTopology.from_json(json.dumps(doc))
    with pytest.raises(ConfigurationError, match="parse"):
        NumaTopology.from_json("{not json")

    path = tmp_path / "machine.json"
    path.write_text(topo.to_json())
    assert get_topology(str(path)) == topo


def test_get_topology_resolution():
    assert get_topology(None) is SINGLE_NODE
    assert get_topology("4-node") is PRESETS["4-node"]
    topo = PRESETS["2-node"]
    assert get_topology(topo) is topo
    with pytest.raises(ConfigurationError):
        get_topology("3-node")


def test_latency_matrix_rendering():
    text = render_latency_matrix(PRESETS["2-node"])
    assert "node0" in text and "node1" in text
    assert str(ONE_HOP_CYCLES) in text and str(LOCAL_CYCLES) in text


# ---------------------------------------------------------------------------
# Placements
# ---------------------------------------------------------------------------
def test_first_touch_places_everything_on_one_node():
    placement = FirstTouchPlacement(PRESETS["4-node"], node=2)
    for address in (0, 255, 256, 10_000, 1 << 20):
        assert placement.home_of(placement.line_of(address)) == 2


def test_interleaved_round_robins_lines():
    placement = InterleavedPlacement(PRESETS["4-node"])
    line = DEFAULT_LINE_SIZE
    homes = [placement.home_of(placement.line_of(k * line)) for k in range(8)]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3]
    # Same line, same home — byte offset within a line is irrelevant.
    assert placement.home_of(placement.line_of(line + 7)) == homes[1]


def test_memory_image_attribution():
    from repro.pagetables.hashed import HashedPageTable
    from repro.pagetables.memimage import MemoryImage

    table = HashedPageTable(num_buckets=16)
    for vpn in range(32):
        table.insert(vpn, vpn + 100)
    image = MemoryImage.of_hashed(table)
    assert image.numa_node_of(0) == 0  # unattached: single-node

    placement = InterleavedPlacement(PRESETS["4-node"])
    assert image.attach_numa(placement) is image
    line = DEFAULT_LINE_SIZE
    assert [image.numa_node_of(k * line) for k in range(4)] == [0, 1, 2, 3]
    assert image.numa_node_of(line + 3) == 1


def test_mmu_coarse_mode_charges_remote_first_touch():
    """A node-2 walker over a node-0 first-touch table pays one hop."""
    from repro.mmu.mmu import MMU
    from repro.mmu.tlb import FullyAssociativeTLB
    from repro.numa.costing import WalkCoster
    from repro.numa.policy import make_policy
    from repro.pagetables.hashed import HashedPageTable

    topo = PRESETS["4-node"]
    table = HashedPageTable(num_buckets=16)
    for vpn in range(64):
        table.insert(vpn, vpn + 100)
    coster = WalkCoster(make_policy("none", FirstTouchPlacement(topo, node=0)))
    assert table.attach_numa(coster, node=2) is table
    mmu = MMU(FullyAssociativeTLB(8), table)
    for vpn in [v % 64 for v in range(0, 600, 7)]:
        mmu.translate(vpn)
    stats = mmu.stats
    assert stats.numa_cycles == stats.cache_lines * ONE_HOP_CYCLES
    assert dict(stats.lines_by_node) == {0: stats.cache_lines}
    assert table.stats.numa_cycles == stats.numa_cycles


# ---------------------------------------------------------------------------
# Node-aware frame allocation
# ---------------------------------------------------------------------------
def test_frame_allocator_prefers_local_frames():
    layout = AddressLayout()
    topo = PRESETS["4-node"]
    alloc = FrameAllocator(256, layout, topology=topo)
    ppn = alloc.allocate(vpn=0, node=2)
    assert alloc.node_of_frame(ppn) == 2
    assert alloc.stats.node_local == 1 and alloc.stats.node_remote == 0
    # Exhaust node 3's 64-frame slice; the next request spills remote.
    for i in range(64):
        alloc.allocate(vpn=100 + i, node=3)
    spilled = alloc.allocate(vpn=999, node=3)
    assert alloc.node_of_frame(spilled) != 3
    assert alloc.stats.node_remote == 1


def test_reservation_allocator_composes_placement_and_locality():
    layout = AddressLayout(subblock_factor=4)
    alloc = ReservationAllocator(64, layout, topology=PRESETS["4-node"])
    vpn = layout.subblock_factor * 5  # block-aligned
    ppn = alloc.allocate(vpn, node=1)
    assert alloc.node_of_frame(ppn) == 1
    assert layout.properly_placed(vpn, ppn, layout.subblock_factor)
    assert alloc.stats.properly_placed == 1
    assert alloc.stats.node_local == 1


def test_allocators_without_topology_are_single_node():
    alloc = FrameAllocator(16)
    assert alloc.node_of_frame(7) == 0
    ppn = alloc.allocate(vpn=3)
    assert alloc.stats.node_local == 0 and alloc.stats.node_remote == 0
    assert ppn == 0
