"""Hashed page tables: chaining, grains, packing, superpage-index variant."""

import pytest

from repro.addr.layout import AddressLayout
from repro.errors import (
    AlignmentError,
    ConfigurationError,
    MappingExistsError,
    PageFaultError,
)
from repro.pagetables.hashed import (
    HASHED_NODE_BYTES,
    PACKED_NODE_BYTES,
    HashedPageTable,
    SuperpageIndexHashedPageTable,
    multiplicative_hash,
)
from repro.pagetables.pte import PTEKind


def collide_everything(tag, buckets):
    """Degenerate hash for chain-behaviour tests."""
    return 0


class TestHashFunction:
    def test_deterministic(self):
        assert multiplicative_hash(123, 4096) == multiplicative_hash(123, 4096)

    def test_in_range(self):
        for key in (0, 1, 1 << 51, (1 << 52) - 1):
            assert 0 <= multiplicative_hash(key, 4096) < 4096

    def test_high_bit_differences_spread(self):
        # Tags differing only in high bits (per-process VA slices) must not
        # collide systematically — the regression behind per-process
        # offsets of 2^20 pages.
        buckets = 4096
        base_tags = range(0, 64)
        collisions = sum(
            multiplicative_hash(t, buckets)
            == multiplicative_hash(t + (1 << 20), buckets)
            for t in base_tags
        )
        assert collisions <= 2

    def test_sequential_tags_spread(self):
        buckets = 512
        hits = {multiplicative_hash(t, buckets) for t in range(256)}
        assert len(hits) > 200


class TestBasicOperation:
    def test_insert_lookup(self, layout):
        table = HashedPageTable(layout)
        table.insert(0x123, 0x456)
        result = table.lookup(0x123)
        assert result.ppn == 0x456
        assert result.kind is PTEKind.BASE
        assert result.npages == 1

    def test_lookup_miss_faults(self, layout):
        table = HashedPageTable(layout)
        with pytest.raises(PageFaultError):
            table.lookup(0x999)
        assert table.stats.faults == 1

    def test_duplicate_insert_rejected(self, layout):
        table = HashedPageTable(layout)
        table.insert(1, 2)
        with pytest.raises(MappingExistsError):
            table.insert(1, 3)

    def test_remove(self, layout):
        table = HashedPageTable(layout)
        table.insert(1, 2)
        table.remove(1)
        with pytest.raises(PageFaultError):
            table.lookup(1)

    def test_remove_missing_faults(self, layout):
        with pytest.raises(PageFaultError):
            HashedPageTable(layout).remove(1)

    def test_node_count_tracks(self, layout):
        table = HashedPageTable(layout)
        for i in range(10):
            table.insert(i * 100, i)
        assert table.node_count == 10
        table.remove(300)
        assert table.node_count == 9

    def test_rejects_zero_buckets(self, layout):
        with pytest.raises(ConfigurationError):
            HashedPageTable(layout, num_buckets=0)

    def test_rejects_bad_grain(self, layout):
        with pytest.raises(ConfigurationError):
            HashedPageTable(layout, grain=3)


class TestChainCosts:
    def test_empty_bucket_costs_one_line(self, layout):
        table = HashedPageTable(layout)
        with pytest.raises(PageFaultError):
            table.lookup(0x42)
        assert table.stats.cache_lines == 1
        assert table.stats.probes == 1

    def test_chain_position_costs(self, layout):
        table = HashedPageTable(layout, hash_fn=collide_everything)
        for vpn in (10, 20, 30):
            table.insert(vpn, vpn)
        assert table.lookup(10).cache_lines == 1
        assert table.lookup(20).cache_lines == 2
        assert table.lookup(30).cache_lines == 3

    def test_miss_walks_whole_chain(self, layout):
        table = HashedPageTable(layout, hash_fn=collide_everything)
        for vpn in (10, 20, 30):
            table.insert(vpn, vpn)
        with pytest.raises(PageFaultError):
            table.lookup(40)
        assert table.stats.cache_lines == 3

    def test_load_factor(self, layout):
        table = HashedPageTable(layout, num_buckets=100)
        for i in range(50):
            table.insert(i * 977, i)
        assert table.load_factor() == pytest.approx(0.5)

    def test_chain_lengths_sum_to_nodes(self, layout):
        table = HashedPageTable(layout, num_buckets=8)
        for i in range(30):
            table.insert(i * 977, i)
        assert sum(table.chain_lengths()) == 30


class TestSizeAccounting:
    def test_node_bytes_standard(self, layout):
        table = HashedPageTable(layout)
        table.insert(1, 1)
        assert table.size_bytes() == HASHED_NODE_BYTES

    def test_packed_optimisation_saves_a_third(self, layout):
        # §7: packing tag+next into 8 bytes cuts size by 33%.
        plain = HashedPageTable(layout)
        packed = HashedPageTable(layout, packed=True)
        for i in range(60):
            plain.insert(i, i)
            packed.insert(i, i)
        assert packed.size_bytes() == PACKED_NODE_BYTES * 60
        assert packed.size_bytes() / plain.size_bytes() == pytest.approx(2 / 3)

    def test_bucket_array_excluded_by_default(self, layout):
        table = HashedPageTable(layout)
        assert table.size_bytes() == 0

    def test_bucket_array_included_when_asked(self, layout):
        table = HashedPageTable(layout, num_buckets=64, count_bucket_array=True)
        assert table.size_bytes() == 64 * HASHED_NODE_BYTES


class TestBlockGrainTable:
    def test_base_insert_rejected(self, layout):
        table = HashedPageTable(layout, grain=16)
        with pytest.raises(ConfigurationError):
            table.insert(1, 1)

    def test_superpage_round_trip(self, layout):
        table = HashedPageTable(layout, grain=16)
        table.insert_superpage(0x100, 16, 0x500)
        result = table.lookup(0x105)
        assert result.kind is PTEKind.SUPERPAGE
        assert result.ppn == 0x505
        assert result.base_vpn == 0x100
        assert result.npages == 16

    def test_superpage_size_must_match_grain(self, layout):
        table = HashedPageTable(layout, grain=16)
        with pytest.raises(AlignmentError):
            table.insert_superpage(0x100, 8, 0x500)

    def test_superpage_alignment_enforced(self, layout):
        table = HashedPageTable(layout, grain=16)
        with pytest.raises(AlignmentError):
            table.insert_superpage(0x101, 16, 0x500)

    def test_partial_subblock_round_trip(self, layout):
        table = HashedPageTable(layout, grain=16)
        table.insert_partial_subblock(0x10, 0b101, 0x200)
        result = table.lookup(0x10 * 16 + 2)
        assert result.kind is PTEKind.PARTIAL_SUBBLOCK
        assert result.ppn == 0x202
        assert result.valid_mask == 0b101

    def test_partial_subblock_invalid_page_faults(self, layout):
        table = HashedPageTable(layout, grain=16)
        table.insert_partial_subblock(0x10, 0b101, 0x200)
        with pytest.raises(PageFaultError):
            table.lookup(0x10 * 16 + 1)

    def test_partial_subblock_needs_block_grain(self, layout):
        with pytest.raises(AlignmentError):
            HashedPageTable(layout, grain=4).insert_partial_subblock(1, 1, 0)

    def test_partial_subblock_needs_nonempty_mask(self, layout):
        table = HashedPageTable(layout, grain=16)
        with pytest.raises(ConfigurationError):
            table.insert_partial_subblock(0x10, 0, 0x200)

    def test_superpage_on_grain_one_rejected(self, layout):
        table = HashedPageTable(layout, grain=1)
        with pytest.raises(AlignmentError):
            table.insert_superpage(0x100, 16, 0x500)


class TestSuperpageIndexVariant:
    def test_base_and_superpage_share_buckets(self, layout):
        table = SuperpageIndexHashedPageTable(layout)
        table.insert(0x100, 0x1)          # base page in block 0x10
        table.insert_superpage(0x110, 16, 0x200)
        assert table.lookup(0x100).ppn == 0x1
        assert table.lookup(0x115).ppn == 0x205

    def test_small_superpage_coexists_with_base_pages(self, layout):
        # §5's example: an 8KB superpage plus base pages in one block.
        table = SuperpageIndexHashedPageTable(layout)
        table.insert_superpage(0x200, 2, 0x400)
        table.insert(0x202, 0x9)
        assert table.lookup(0x201).kind is PTEKind.SUPERPAGE
        assert table.lookup(0x202).kind is PTEKind.BASE

    def test_oversized_superpage_rejected(self, layout):
        table = SuperpageIndexHashedPageTable(layout)
        with pytest.raises(AlignmentError):
            table.insert_superpage(0, 32, 0)

    def test_sixteen_base_pages_make_long_chain(self, layout):
        # The §4.2 drawback: base pages of one region chain together.
        table = SuperpageIndexHashedPageTable(layout)
        for i in range(16):
            table.insert(0x300 + i, i)
        assert max(table.chain_lengths()) == 16
        assert table.lookup(0x30F).probes >= 1

    def test_continue_after_invalid_tag_match(self, layout):
        # A partial-subblock PTE that does not validate the page must not
        # stop the chain walk (§5).
        table = SuperpageIndexHashedPageTable(layout)
        table.insert_partial_subblock(0x40, 0b0001, 0x400)
        table.insert(0x40 * 16 + 3, 0x9)
        assert table.lookup(0x40 * 16 + 3).ppn == 0x9

    def test_remove_superpage_node(self, layout):
        table = SuperpageIndexHashedPageTable(layout)
        table.insert_superpage(0x200, 2, 0x400)
        table.remove(0x201)
        with pytest.raises(PageFaultError):
            table.lookup(0x200)

    def test_partial_subblock_round_trip(self, layout):
        table = SuperpageIndexHashedPageTable(layout)
        table.insert_partial_subblock(0x50, 0b11, 0x600)
        assert table.lookup(0x50 * 16 + 1).ppn == 0x601
