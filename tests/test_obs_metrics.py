"""The metrics registry: counters, labels, merging, subsystem reporting."""

import json

import pytest

from repro.obs.metrics import (
    HistogramStats,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.timer import PHASE_METRIC, PhaseTimer, phase_timer


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    yield
    reset_registry()


class TestCounters:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        assert registry.counter("x.events") == 0
        assert registry.inc("x.events") == 1
        assert registry.inc("x.events", 4) == 5
        assert registry.counter("x.events") == 5

    def test_labels_are_independent_series(self):
        registry = MetricsRegistry()
        registry.inc("evictions", reason="schema")
        registry.inc("evictions", 2, reason="shape")
        assert registry.counter("evictions", reason="schema") == 1
        assert registry.counter("evictions", reason="shape") == 2
        assert registry.counter("evictions") == 0  # unlabelled is distinct
        assert registry.values("evictions") == {
            "evictions{reason=schema}": 1,
            "evictions{reason=shape}": 2,
        }

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.inc("m", a="1", b="2")
        registry.inc("m", b="2", a="1")
        assert registry.counter("m", b="2", a="1") == 2

    def test_merge_counters_round_trips_labels(self):
        worker = MetricsRegistry()
        worker.inc("cache.evictions", 3, reason="schema")
        worker.inc("cache.hits", 7)
        main = MetricsRegistry()
        main.inc("cache.hits", 1)
        main.merge_counters(worker.state()["counters"])
        assert main.counter("cache.hits") == 8
        assert main.counter("cache.evictions", reason="schema") == 3

    def test_merge_survives_hostile_label_values(self):
        # The regression the structured-state API exists for: rendered
        # keys like "m{reason=a=b,c}d}" are unparseable, so a merge
        # through snapshot() strings would corrupt or split the series.
        hostile = "a=b,c}d"
        worker = MetricsRegistry()
        worker.inc("cache.evictions", 5, reason=hostile)
        main = MetricsRegistry()
        main.merge_state(worker.state())
        assert main.counter("cache.evictions", reason=hostile) == 5
        # The whole round trip is JSON-safe and lossless.
        state = json.loads(json.dumps(main.state()))
        again = MetricsRegistry()
        again.merge_state(state)
        assert again.state() == main.state()

    def test_merge_counters_rejects_rendered_keys(self):
        main = MetricsRegistry()
        with pytest.raises(ValueError, match="rendered counter key"):
            main.merge_counters({"cache.evictions{reason=schema}": 3})
        # Unlabelled plain mappings remain accepted.
        main.merge_counters({"cache.hits": 2})
        assert main.counter("cache.hits") == 2

    def test_merge_state_covers_gauges_and_histograms(self):
        worker = MetricsRegistry()
        worker.set_gauge("ring.fill", 0.75, ring="walks")
        for value in (1.0, 8.0, 8.0):
            worker.observe("walk.cache_lines", value, table="hashed")
        main = MetricsRegistry()
        main.set_gauge("ring.fill", 0.25, ring="walks")
        main.observe("walk.cache_lines", 2.0, table="hashed")
        main.merge_state(worker.state())
        # Gauges: last writer wins (a level, not a flow).
        assert main.gauge("ring.fill", ring="walks") == 0.75
        merged = main.histogram("walk.cache_lines", table="hashed")
        assert merged.count == 4
        assert merged.total == 19.0
        assert merged.minimum == 1.0 and merged.maximum == 8.0
        assert sum(merged.buckets.values()) + merged.zeros == merged.count


class TestGaugesAndHistograms:
    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("ring.fill", 0.25)
        registry.set_gauge("ring.fill", 0.5)
        assert registry.gauge("ring.fill") == 0.5
        assert registry.gauge("never.set") == 0.0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("latency", value)
        h = registry.histogram("latency")
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.minimum == 1.0 and h.maximum == 3.0
        assert registry.histogram("empty").count == 0
        assert HistogramStats().as_dict()["min"] == 0.0

    def test_empty_histogram_never_leaks_sentinels(self):
        empty = HistogramStats()
        assert empty.minimum == 0.0
        assert empty.maximum == 0.0
        assert empty.mean == 0.0
        assert empty.percentile(0.99) == 0.0
        doc = empty.as_dict()
        assert doc["min"] == 0.0 and doc["max"] == 0.0
        assert json.loads(json.dumps(doc)) == doc  # no inf/-inf anywhere

    def test_log2_bucket_boundaries(self):
        # Bucket e covers (2^(e-1), 2^e]: exact powers of two close
        # their bucket, values <= 0 land in the zeros counter.
        assert HistogramStats.bucket_of(0) is None
        assert HistogramStats.bucket_of(-3.0) is None
        assert HistogramStats.bucket_of(1.0) == 0
        assert HistogramStats.bucket_of(1.5) == 1
        assert HistogramStats.bucket_of(2.0) == 1
        assert HistogramStats.bucket_of(2.1) == 2
        assert HistogramStats.bucket_of(16.0) == 4
        assert HistogramStats.bucket_of(16.000001) == 5

    def test_bucket_invariant_and_percentiles(self):
        h = HistogramStats()
        for value in (0.0, 1.0, 2.0, 2.0, 3.0, 100.0):
            h.observe(value)
        assert sum(h.buckets.values()) + h.zeros == h.count
        assert h.zeros == 1
        # Percentiles are bucket estimates clamped to [min, max].
        assert h.minimum <= h.p50 <= h.p95 <= h.p99 <= h.maximum
        assert h.p99 == 100.0  # rank 6 of 6 lands in the top bucket
        single = HistogramStats()
        single.observe(7.0)
        assert single.p50 == single.p99 == 7.0  # clamp → exact

    def test_histogram_merge_matches_combined_observations(self):
        left, right, combined = (
            HistogramStats(), HistogramStats(), HistogramStats()
        )
        for value in (1.0, 4.0, 0.0):
            left.observe(value)
            combined.observe(value)
        for value in (2.0, 64.0):
            right.observe(value)
            combined.observe(value)
        left.merge(right)
        assert left.as_dict() == combined.as_dict()
        # Merging a dict dump is equivalent to merging the object.
        from_doc = HistogramStats()
        from_doc.merge(combined.as_dict())
        assert from_doc.as_dict() == combined.as_dict()
        # Merging an empty histogram is a no-op.
        before = left.as_dict()
        left.merge(HistogramStats())
        assert left.as_dict() == before


class TestRenderAndSnapshot:
    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("a.b", 2, kind="x")
        registry.set_gauge("g", 1.5)
        registry.observe("h", 0.1)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"a.b{kind=x}": 2}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_render_empty_and_populated(self):
        registry = MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.inc("cache.hits", 12)
        text = registry.render()
        assert "Counters" in text and "cache.hits" in text and "12" in text

    def test_reset_registry_clears_process_registry(self):
        get_registry().inc("something")
        assert get_registry().counter("something") == 1
        reset_registry()
        assert get_registry().counter("something") == 0


class TestPhaseTimer:
    def test_records_histogram_per_phase(self):
        registry = MetricsRegistry()
        with PhaseTimer("prewarm", registry=registry) as timer:
            pass
        assert timer.last_seconds >= 0.0
        assert registry.histogram(PHASE_METRIC, phase="prewarm").count == 1
        with phase_timer("prewarm", registry=registry):
            pass
        assert registry.histogram(PHASE_METRIC, phase="prewarm").count == 2

    def test_defaults_to_process_registry(self):
        with PhaseTimer("experiments"):
            pass
        assert (
            get_registry().histogram(PHASE_METRIC, phase="experiments").count
            == 1
        )


class TestSubsystemReporting:
    def test_shootdown_rounds_land_in_registry(self):
        from repro.mmu.tlb import FullyAssociativeTLB
        from repro.os.shootdown import SMPSystem
        from repro.pagetables.hashed import HashedPageTable

        table = HashedPageTable(num_buckets=16)
        for vpn in range(8):
            table.insert(vpn, vpn + 0x100)
        system = SMPSystem(table, lambda: FullyAssociativeTLB(8), ncpus=3)
        for cpu in range(3):
            system.translate(cpu, 5)
        system.unmap_range(4, 4)
        registry = get_registry()
        assert registry.counter("shootdown.rounds") == 1
        assert registry.counter("shootdown.ipis_sent") == 2
        assert registry.counter("shootdown.entries_invalidated") == 3

    def test_replication_fanout_lands_in_registry(self):
        from repro.numa.replication import ReplicatedPageTable
        from repro.numa.topology import PRESETS
        from repro.pagetables.hashed import HashedPageTable

        replicated = ReplicatedPageTable(
            lambda: HashedPageTable(num_buckets=16), PRESETS["4-node"]
        )
        replicated.insert(1, 0x101)
        replicated.remove(1)
        registry = get_registry()
        assert registry.counter("replication.updates") == 2
        assert registry.counter("replication.replica_writes") == 8
        assert registry.counter("replication.coherence_writes") == 6
