"""Byte-exact memory images: raw-memory walks agree with the live tables."""

import random

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import ConfigurationError, PageFaultError
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.memimage import MemoryImage


class TestHashedImage:
    def test_walk_matches_table(self, layout):
        table = HashedPageTable(layout, num_buckets=64)
        mappings = {i * 37: i + 100 for i in range(50)}
        for vpn, ppn in mappings.items():
            table.insert(vpn, ppn, attrs=0x5)
        image = MemoryImage.of_hashed(table)
        for vpn, ppn in mappings.items():
            assert image.walk(vpn) == (ppn, 0x5)

    def test_walk_faults_on_unmapped(self, layout):
        table = HashedPageTable(layout, num_buckets=64)
        table.insert(1, 2)
        image = MemoryImage.of_hashed(table)
        with pytest.raises(PageFaultError):
            image.walk(999)

    def test_chain_links_work(self, layout):
        # Force every tag into one bucket: the image must follow next
        # pointers through overflow nodes.
        table = HashedPageTable(layout, num_buckets=4,
                                hash_fn=lambda tag, buckets: 0)
        for vpn in range(10):
            table.insert(vpn, vpn + 50)
        image = MemoryImage.of_hashed(table)
        for vpn in range(10):
            assert image.walk(vpn)[0] == vpn + 50

    def test_payload_matches_size_bytes(self, layout):
        table = HashedPageTable(layout, num_buckets=64)
        for i in range(30):
            table.insert(i * 17, i)
        image = MemoryImage.of_hashed(table)
        assert image.payload_bytes() == table.size_bytes()

    def test_block_grain_rejected(self, layout):
        with pytest.raises(ConfigurationError):
            MemoryImage.of_hashed(HashedPageTable(layout, grain=16))


class TestClusteredImage:
    def build(self, layout):
        table = ClusteredPageTable(layout, num_buckets=64)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)        # full clustered node
        table.insert(0x210, 0x99)                     # sparse clustered node
        table.insert_superpage(0x300, 16, 0x800)      # block superpage
        table.insert_superpage(0x408, 8, 0x908)       # small superpage
        table.insert(0x403, 0x55)                     # base page, same block
        table.insert_partial_subblock(0x50, 0b1010, 0xA00)
        return table

    def test_walk_matches_table_everywhere(self, layout):
        table = self.build(layout)
        image = MemoryImage.of_clustered(table)
        probes = (
            list(range(0x100, 0x110)) + [0x210, 0x305, 0x403, 0x40A, 0x40F,
                                         0x501, 0x503]
        )
        for vpn in probes:
            expected = table.lookup(vpn)
            assert image.walk(vpn) == (expected.ppn, expected.attrs), hex(vpn)

    def test_walk_faults_match(self, layout):
        table = self.build(layout)
        image = MemoryImage.of_clustered(table)
        for vpn in (0x211, 0x400, 0x500, 0x502, 0x9999):
            with pytest.raises(PageFaultError):
                table.lookup(vpn)
            with pytest.raises(PageFaultError):
                image.walk(vpn)

    def test_small_superpage_does_not_leak(self, layout):
        # The 8-page superpage at 0x408 must not translate 0x400-0x407.
        table = self.build(layout)
        image = MemoryImage.of_clustered(table)
        with pytest.raises(PageFaultError):
            image.walk(0x404)

    def test_large_superpage_replicas(self, layout):
        table = ClusteredPageTable(layout, num_buckets=64)
        table.insert_superpage(0x400, 64, 0x800)
        image = MemoryImage.of_clustered(table)
        for vpn in (0x400, 0x41F, 0x43F):
            assert image.walk(vpn)[0] == 0x800 + (vpn - 0x400)

    def test_payload_matches_size_bytes(self, layout):
        table = self.build(layout)
        image = MemoryImage.of_clustered(table)
        assert image.payload_bytes() == table.size_bytes()

    def test_random_tables_roundtrip(self, layout):
        rng = random.Random(31)
        table = ClusteredPageTable(layout, num_buckets=32)
        reference = {}
        for _ in range(300):
            vpn = rng.randrange(0, 4096)
            if vpn in reference:
                continue
            ppn = rng.randrange(0, 1 << 20)
            table.insert(vpn, ppn)
            reference[vpn] = ppn
        image = MemoryImage.of_clustered(table)
        for vpn, ppn in reference.items():
            assert image.walk(vpn)[0] == ppn
        assert image.payload_bytes() == table.size_bytes()
