"""Frame allocators: first-fit baseline and page reservation."""

import pytest

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.os.physmem import FrameAllocator, ReservationAllocator


class TestFrameAllocator:
    def test_allocates_distinct_frames(self, layout):
        allocator = FrameAllocator(64, layout)
        frames = {allocator.allocate(vpn) for vpn in range(64)}
        assert len(frames) == 64

    def test_exhaustion_raises(self, layout):
        allocator = FrameAllocator(2, layout)
        allocator.allocate(0)
        allocator.allocate(1)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(2)

    def test_release_recycles(self, layout):
        allocator = FrameAllocator(1, layout)
        ppn = allocator.allocate(0)
        allocator.release(ppn)
        assert allocator.allocate(1) == ppn

    def test_double_free_rejected(self, layout):
        allocator = FrameAllocator(4, layout)
        ppn = allocator.allocate(0)
        allocator.release(ppn)
        with pytest.raises(ConfigurationError):
            allocator.release(ppn)

    def test_free_of_unallocated_rejected(self, layout):
        with pytest.raises(ConfigurationError):
            FrameAllocator(4, layout).release(99)

    def test_rejects_zero_frames(self, layout):
        with pytest.raises(ConfigurationError):
            FrameAllocator(0, layout)

    def test_stats_count(self, layout):
        allocator = FrameAllocator(16, layout)
        allocator.allocate(0)
        allocator.release(0)
        assert allocator.stats.allocations == 1
        assert allocator.stats.frees == 1


class TestReservationAllocator:
    def test_block_pages_properly_placed(self, layout):
        allocator = ReservationAllocator(64, layout)
        base_vpn = 0x120  # block-aligned (0x120 = 18 * 16)
        ppns = [allocator.allocate(base_vpn + i) for i in range(16)]
        base_ppn = ppns[0]
        assert base_ppn % 16 == 0
        assert ppns == list(range(base_ppn, base_ppn + 16))
        assert allocator.stats.placement_rate == 1.0

    def test_interleaved_blocks_each_reserved(self, layout):
        allocator = ReservationAllocator(64, layout)
        a = allocator.allocate(0x100)
        b = allocator.allocate(0x200)
        a2 = allocator.allocate(0x101)
        b2 = allocator.allocate(0x201)
        assert a2 == a + 1 and b2 == b + 1
        assert a // 16 != b // 16

    def test_pressure_steals_reservations(self, layout):
        # 2 blocks of frames, 3 virtual blocks touched: the third must
        # steal and land improperly placed.
        allocator = ReservationAllocator(32, layout)
        allocator.allocate(0x100)
        allocator.allocate(0x200)
        allocator.allocate(0x300)
        assert allocator.stats.fallback_placed >= 1
        assert allocator.stats.reservations_stolen >= 1

    def test_exhaustion_after_stealing(self, layout):
        allocator = ReservationAllocator(16, layout)
        for i in range(16):
            allocator.allocate(0x1000 + i * 16)  # 16 different blocks
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(0x9999)

    def test_release_reforms_block(self, layout):
        allocator = ReservationAllocator(16, layout)
        ppns = [allocator.allocate(0x100 + i) for i in range(16)]
        for ppn in ppns:
            allocator.release(ppn)
        # The freed reservation is again available as an aligned block.
        fresh = allocator.allocate(0x200)
        assert fresh % 16 == 0
        assert allocator.stats.properly_placed == 17

    def test_rejects_unaligned_frame_count(self, layout):
        with pytest.raises(ConfigurationError):
            ReservationAllocator(30, layout)

    def test_reservation_lookup(self, layout):
        allocator = ReservationAllocator(32, layout)
        allocator.allocate(0x100)
        assert allocator.reservation_for(0x10) is not None
        assert allocator.reservation_for(0x55) is None

    def test_fragmentation_metric(self, layout):
        allocator = ReservationAllocator(32, layout)
        assert allocator.fragmentation() == 0.0
        allocator.allocate(0x100)  # breaks one block
        assert 0.0 < allocator.fragmentation() <= 1.0

    def test_small_factor_layout(self):
        layout = AddressLayout(subblock_factor=4)
        allocator = ReservationAllocator(16, layout)
        ppns = [allocator.allocate(0x40 + i) for i in range(4)]
        assert ppns[0] % 4 == 0
        assert ppns == list(range(ppns[0], ppns[0] + 4))
