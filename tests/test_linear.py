"""Linear page tables: structures, nested-TLB costs, replication."""

import pytest

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError, MappingExistsError, PageFaultError
from repro.pagetables.linear import LinearPageTable
from repro.pagetables.pte import PTEKind


class TestConstruction:
    def test_levels_for_64bit(self, layout):
        table = LinearPageTable(layout)
        assert table.levels == 6  # ceil(52 / 9)
        assert table.ptes_per_page == 512

    def test_structure_names(self, layout):
        assert LinearPageTable(layout, structure="ideal").name == "linear-1lvl"
        assert LinearPageTable(layout, structure="multilevel").name == "linear-6lvl"
        assert LinearPageTable(layout, structure="hashed").name == "linear-hashed"

    def test_unknown_structure_rejected(self, layout):
        with pytest.raises(ConfigurationError):
            LinearPageTable(layout, structure="btree")


class TestBasicOperation:
    def test_insert_lookup(self, layout):
        table = LinearPageTable(layout)
        table.insert(0x12345, 0x678)
        assert table.lookup(0x12345).ppn == 0x678

    def test_duplicate_rejected(self, layout):
        table = LinearPageTable(layout)
        table.insert(1, 1)
        with pytest.raises(MappingExistsError):
            table.insert(1, 2)

    def test_lookup_miss_faults(self, layout):
        with pytest.raises(PageFaultError):
            LinearPageTable(layout).lookup(1)

    def test_remove(self, layout):
        table = LinearPageTable(layout)
        table.insert(1, 1)
        table.remove(1)
        with pytest.raises(PageFaultError):
            table.lookup(1)

    def test_remove_missing_faults(self, layout):
        with pytest.raises(PageFaultError):
            LinearPageTable(layout).remove(1)


class TestSizeFormulae:
    def test_ideal_size_is_leaf_pages(self, layout):
        table = LinearPageTable(layout, structure="ideal")
        table.insert(0, 0)          # leaf page 0
        table.insert(511, 1)        # same leaf page
        table.insert(512, 2)        # second leaf page
        assert table.size_bytes() == 2 * 4096

    def test_hashed_backed_size(self, layout):
        table = LinearPageTable(layout, structure="hashed")
        table.insert(0, 0)
        assert table.size_bytes() == 4096 + 24

    def test_multilevel_counts_all_levels(self, layout):
        table = LinearPageTable(layout, structure="multilevel")
        table.insert(0, 0)
        # One node per level: 6 x 4KB.
        assert table.size_bytes() == 6 * 4096

    def test_multilevel_sparse_pays_per_region(self, layout):
        table = LinearPageTable(layout, structure="multilevel")
        table.insert(0, 0)
        table.insert(1 << 40, 1)  # far away: separate nodes at low levels
        assert table.size_bytes() > 6 * 4096

    def test_size_empty(self, layout):
        assert LinearPageTable(layout).size_bytes() == 0


class TestNestedTLBCosts:
    def test_ideal_always_one_line(self, layout):
        table = LinearPageTable(layout, structure="ideal")
        for vpn in (0, 1 << 20, 1 << 40):
            table.insert(vpn, 1)
        assert all(table.lookup(v).cache_lines == 1 for v in (0, 1 << 20, 1 << 40))

    def test_multilevel_cold_walk_costs_levels(self, layout):
        table = LinearPageTable(layout, structure="multilevel")
        table.insert(0x1234, 1)
        # Cold nested TLB: climb to the pinned root = 6 accesses.
        assert table.lookup(0x1234).cache_lines == 6

    def test_multilevel_warm_walk_costs_one(self, layout):
        table = LinearPageTable(layout, structure="multilevel")
        table.insert(0x1234, 1)
        table.lookup(0x1234)
        assert table.lookup(0x1234).cache_lines == 1

    def test_second_page_same_leaf_is_warm(self, layout):
        table = LinearPageTable(layout, structure="multilevel")
        table.insert(0x1234, 1)
        table.insert(0x1235, 2)
        table.lookup(0x1234)
        assert table.lookup(0x1235).cache_lines == 1

    def test_nearby_leaf_reuses_upper_levels(self, layout):
        table = LinearPageTable(layout, structure="multilevel")
        table.insert(0, 1)
        table.insert(512, 2)  # next leaf page, same level-2 node
        table.lookup(0)
        assert table.lookup(512).cache_lines == 2

    def test_reserved_capacity_evicts_lru(self, layout):
        table = LinearPageTable(layout, structure="multilevel",
                                reserved_tlb_entries=2)
        for i in range(4):
            table.insert(i * 512 * 512, i)  # distinct level-2 regions
        for i in range(4):
            table.lookup(i * 512 * 512)
        # Cycling through 4 leaf regions with 2 reserved entries: the
        # first region's translation is long gone.
        lines = table.lookup(0).cache_lines
        assert lines > 1

    def test_hashed_backed_miss_costs_two(self, layout):
        table = LinearPageTable(layout, structure="hashed")
        table.insert(0x1234, 1)
        assert table.lookup(0x1234).cache_lines == 2  # probe + leaf
        assert table.lookup(0x1234).cache_lines == 1  # now cached

    def test_fault_still_counts_lines(self, layout):
        table = LinearPageTable(layout, structure="multilevel")
        with pytest.raises(PageFaultError):
            table.lookup(0x42)
        assert table.stats.cache_lines == 6


class TestReplication:
    def test_superpage_replicates_at_each_site(self, layout):
        table = LinearPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        assert table.pte_count == 16
        result = table.lookup(0x105)
        assert result.kind is PTEKind.SUPERPAGE
        assert result.ppn == 0x405
        assert result.base_vpn == 0x100 and result.npages == 16

    def test_replication_gives_no_size_benefit(self, layout):
        # §4.2 drawback: replicate-PTEs cannot shrink the table.
        base = LinearPageTable(layout)
        for i in range(16):
            base.insert(0x100 + i, 0x400 + i)
        replicated = LinearPageTable(layout)
        replicated.insert_superpage(0x100, 16, 0x400)
        assert replicated.size_bytes() == base.size_bytes()

    def test_partial_subblock_replicates_valid_sites_only(self, layout):
        table = LinearPageTable(layout)
        table.insert_partial_subblock(0x10, 0b101, 0x400)
        assert table.pte_count == 2
        assert table.lookup(0x102).ppn == 0x402
        with pytest.raises(PageFaultError):
            table.lookup(0x101)

    def test_remove_replicated_range(self, layout):
        table = LinearPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        assert table.remove_replicated_range(0x100, 16) == 16
        assert table.pte_count == 0

    def test_replica_overlap_rejected(self, layout):
        table = LinearPageTable(layout)
        table.insert(0x105, 9)
        with pytest.raises(MappingExistsError):
            table.insert_superpage(0x100, 16, 0x400)


class TestBlockLookup:
    def test_block_fetch_one_line(self, layout):
        # 16 adjacent 8-byte PTEs: 128 bytes inside one 256-byte line.
        table = LinearPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        block = table.lookup_block(0x10)
        assert block.valid_mask == 0xFFFF
        assert block.cache_lines == 1

    def test_block_fetch_partial(self, layout):
        table = LinearPageTable(layout)
        table.insert(0x102, 0x9)
        block = table.lookup_block(0x10)
        assert block.valid_mask == 0b100
