"""Stateful (model-based) tests: long random operation interleavings.

Hypothesis drives random sequences of OS-level operations against the
whole stack — VM manager, allocator, page table, TLB — checking global
invariants after every step.  These find interleaving bugs that directed
unit tests cannot.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import OutOfMemoryError, PageFaultError
from repro.mmu.mmu import MMU
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.physmem import ReservationAllocator
from repro.os.vm import VirtualMemoryManager

LAYOUT = AddressLayout()
VPN_POOL = st.integers(min_value=0x100, max_value=0x2FF)  # 32 page blocks


class VMMachine(RuleBasedStateMachine):
    """Random map/unmap/protect/translate against a clustered table."""

    @initialize()
    def setup(self):
        self.table = ClusteredPageTable(LAYOUT, num_buckets=32)
        self.allocator = ReservationAllocator(2048, LAYOUT)
        self.vm = VirtualMemoryManager(
            self.table, self.allocator, auto_promote=True
        )
        self.mmu = MMU(
            FullyAssociativeTLB(16), self.table,
            fault_handler=self.vm.fault_in, maintain_rm_bits=True,
        )
        self.model = {}

    # ------------------------------------------------------------------
    @rule(vpn=VPN_POOL)
    def map_page(self, vpn):
        if vpn in self.model:
            return
        try:
            ppn = self.vm.map_page(vpn)
        except OutOfMemoryError:
            return
        self.model[vpn] = ppn

    @rule(vpn=VPN_POOL)
    def unmap_page(self, vpn):
        if vpn not in self.model:
            return
        self.vm.unmap_page(vpn)
        self.mmu.tlb.invalidate(vpn)
        del self.model[vpn]

    @rule(vpn=VPN_POOL, attrs=st.integers(min_value=1, max_value=0x7))
    def protect(self, vpn, attrs):
        if vpn not in self.model:
            return
        self.vm.protect_range(vpn, 1, attrs)
        self.mmu.tlb.invalidate(vpn)  # a real kernel shoots stale entries

    @rule(vpn=VPN_POOL, write=st.booleans())
    def translate(self, vpn, write):
        if vpn in self.model:
            assert self.mmu.translate(vpn, write=write) == self.model[vpn]
        # Unmapped pages demand-fault through vm.fault_in and then must
        # resolve consistently.
        else:
            ppn = self.mmu.translate(vpn, write=write)
            self.model[vpn] = ppn

    @rule(base=st.integers(min_value=0x10, max_value=0x2F))
    def map_whole_block(self, base):
        block_base = base * 16
        if any(block_base + i in self.model for i in range(16)):
            return
        try:
            self.vm.map_range(block_base, 16)
        except OutOfMemoryError:
            return
        for i in range(16):
            self.model[block_base + i] = self.vm.space.translate(
                block_base + i
            ).ppn

    # ------------------------------------------------------------------
    @invariant()
    def table_matches_model(self):
        # Spot-check a slice of the model each step (full scans are too
        # slow inside an invariant).
        for vpn in list(self.model)[:20]:
            assert self.table.lookup(vpn).ppn == self.model[vpn]

    @invariant()
    def space_and_table_sizes_agree(self):
        assert len(self.vm.space) == len(self.model)

    @invariant()
    def no_phantom_translations(self):
        probe = 0x300  # outside the pool, never mapped
        with pytest.raises(PageFaultError):
            self.table.lookup(probe)


TestVMMachine = VMMachine.TestCase
TestVMMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class PagerMachine(RuleBasedStateMachine):
    """Random accesses against the clock pager under tight memory."""

    @initialize()
    def setup(self):
        from repro.os.paging import ClockPager

        self.pager = ClockPager(
            ClusteredPageTable(LAYOUT, num_buckets=32),
            FullyAssociativeTLB(16),
            frames=48,
        )

    @rule(vpn=st.integers(min_value=0x1000, max_value=0x10FF),
          write=st.booleans())
    def access(self, vpn, write):
        ppn = self.pager.access(vpn, write=write)
        assert self.pager.vm.space.translate(vpn).ppn == ppn

    @invariant()
    def never_over_budget(self):
        assert self.pager.resident_pages <= 48

    @invariant()
    def bookkeeping_is_consistent(self):
        assert self.pager.resident_pages == len(self.pager.vm.space)


TestPagerMachine = PagerMachine.TestCase
TestPagerMachine.settings = settings(
    max_examples=20, stateful_step_count=60, deadline=None
)
