"""Mitosis replication × TLB shootdown: no CPU may see a stale replica.

The coupled invariant: an OS-side PTE update under replication must (a)
reach *every* node's replica and (b) be followed by a shootdown round —
skip either half and some CPU keeps translating through stale state.
The oracle differential drives random updates against a plain dict and
checks every CPU's translations after each; the sabotage tests verify
the harness actually catches both failure modes.
"""

import random

import pytest

from repro.errors import PageFaultError
from repro.mmu.tlb import FullyAssociativeTLB
from repro.numa.replication import NumaSMPSystem, ReplicatedPageTable
from repro.numa.topology import PRESETS
from repro.pagetables.hashed import HashedPageTable

TOPOLOGY = PRESETS["4-node"]
NCPUS = 8
NPAGES = 96


def make_system():
    replicated = ReplicatedPageTable(
        lambda: HashedPageTable(num_buckets=32), TOPOLOGY
    )
    for vpn in range(NPAGES):
        replicated.insert(vpn, vpn + 0x1000)
    system = NumaSMPSystem(
        replicated, lambda: FullyAssociativeTLB(16), ncpus=NCPUS
    )
    return replicated, system


def oracle_check(system, oracle):
    """Every CPU agrees with the oracle on every page — or reports why."""
    for cpu_index, cpu in enumerate(system.cpus):
        for vpn, expected in list(oracle.items()):
            assert cpu.translate(vpn) == expected, (cpu_index, vpn)
        for vpn in range(NPAGES):
            if vpn not in oracle:
                with pytest.raises(PageFaultError):
                    cpu.translate(vpn)


def test_replica_fanout_keeps_all_nodes_coherent():
    replicated, _ = make_system()
    assert replicated.num_replicas == TOPOLOGY.num_nodes
    assert all(replicated.coherent(vpn) for vpn in range(NPAGES))
    # Fan-out accounting: every insert wrote all four replicas.
    assert replicated.stats.updates == NPAGES
    assert replicated.stats.replica_writes == NPAGES * 4
    assert replicated.stats.coherence_writes == NPAGES * 3
    # The replicated footprint is the per-replica sum (Mitosis' cost).
    assert replicated.size_bytes() == sum(
        replica.size_bytes() for replica in replicated.replicas
    )


def test_mmu_oracle_differential_under_random_updates():
    replicated, system = make_system()
    oracle = {vpn: vpn + 0x1000 for vpn in range(NPAGES)}
    rng = random.Random(0x5EED)
    # Warm every TLB so stale entries would survive a missing shootdown.
    for cpu in system.cpus:
        for vpn in range(NPAGES):
            cpu.translate(vpn)
    for step in range(30):
        op = rng.choice(("unmap", "unmap_range", "remap"))
        initiator = rng.randrange(NCPUS)
        if op == "unmap":
            mapped = [vpn for vpn in oracle]
            if mapped:
                vpn = rng.choice(mapped)
                system.unmap(vpn, initiator=initiator)
                del oracle[vpn]
        elif op == "unmap_range":
            bases = [
                base for base in range(0, NPAGES - 8)
                if all(vpn in oracle for vpn in range(base, base + 8))
            ]
            if bases:
                base = rng.choice(bases)
                system.unmap_range(base, 8, initiator=initiator)
                for vpn in range(base, base + 8):
                    del oracle[vpn]
        else:
            free = [vpn for vpn in range(NPAGES) if vpn not in oracle]
            if free:
                vpn = rng.choice(free)
                ppn = 0x8000 + step
                replicated.insert(vpn, ppn)
                oracle[vpn] = ppn
        assert all(replicated.coherent(vpn) for vpn in range(NPAGES))
        oracle_check(system, oracle)
    assert system.stats.shootdowns > 0
    assert system.stats.ipis_sent > 0


def test_bypassing_replica_fanout_is_caught():
    """Updating one replica directly leaves remote nodes stale."""
    replicated, system = make_system()
    victim = 5
    # Sabotage: remove from node 0's replica only, with a full shootdown
    # round — exactly what a non-NUMA-aware OS would do under Mitosis.
    replicated.replica(0).remove(victim)
    system._shootdown([victim], initiator=0)
    assert not replicated.coherent(victim)
    # CPUs on node 0 fault; CPUs on other nodes still translate — the
    # stale-replica divergence the fan-out exists to prevent.
    with pytest.raises(PageFaultError):
        system.cpus[0].translate(victim)
    assert system.cpus[1].translate(victim) == victim + 0x1000


def test_skipping_shootdown_leaves_stale_tlb_entries():
    """Updating all replicas without the IPI round is equally broken."""
    replicated, system = make_system()
    victim = 7
    for cpu in system.cpus:
        cpu.translate(victim)  # cache it everywhere
    replicated.remove(victim)  # coherent replicas...
    assert replicated.coherent(victim)
    # ...but no shootdown: every TLB still hits on the dead mapping.
    for cpu in system.cpus:
        assert cpu.translate(victim) == victim + 0x1000
    # The proper path invalidates everywhere.
    system._shootdown([victim], initiator=0)
    for cpu in system.cpus:
        with pytest.raises(PageFaultError):
            cpu.translate(victim)


class TestCoherentErrorHandling:
    """Regression: ``coherent`` used to catch bare ``Exception``, so a
    replica whose lookup *crashed* read as "consistently unmapped" and the
    differential test above could never notice the broken replica."""

    def test_crashing_replica_lookup_propagates(self):
        replicated, _ = make_system()

        class Boom(RuntimeError):
            pass

        def exploding_lookup(vpn):
            raise Boom(f"lookup bug for vpn {vpn}")

        replicated.replica(2).lookup = exploding_lookup
        with pytest.raises(Boom):
            replicated.coherent(5)

    def test_pagefault_on_one_replica_is_incoherent_not_an_error(self):
        replicated, _ = make_system()
        replicated.replica(1).remove(9)
        assert not replicated.coherent(9)

    def test_all_replicas_unmapped_is_coherent(self):
        replicated, _ = make_system()
        assert replicated.coherent(NPAGES + 100)  # mapped nowhere

    def test_empty_replica_list_is_trivially_coherent(self):
        replicated, _ = make_system()
        replicated.replicas = []
        # Used to raise IndexError on outcomes[0].
        assert replicated.coherent(0)

    def test_attribute_divergence_is_incoherent(self):
        from repro.pagetables.pte import ATTR_NOCACHE

        replicated, _ = make_system()
        replicated.replica(3).mark(4, set_bits=ATTR_NOCACHE)
        assert not replicated.coherent(4)
        assert replicated.coherent(5)


def test_protect_range_downgrades_every_replica():
    from repro.pagetables.pte import ATTR_READ

    replicated, system = make_system()
    system.protect_range(0, 4, attrs=ATTR_READ, initiator=2)
    for node in range(TOPOLOGY.num_nodes):
        for vpn in range(4):
            assert replicated.replica(node).lookup(vpn).attrs == ATTR_READ
    assert all(replicated.coherent(vpn) for vpn in range(4))


def test_cpu_to_node_assignment_round_robins():
    _, system = make_system()
    assert [system.node_of_cpu(cpu) for cpu in range(NCPUS)] == [
        0, 1, 2, 3, 0, 1, 2, 3,
    ]
    # Each CPU's MMU is bound to its node's replica object.
    for cpu in range(NCPUS):
        node = system.node_of_cpu(cpu)
        assert system.cpus[cpu].page_table is system.replicated.replica(node)
