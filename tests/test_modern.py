"""The modern production workload models and their capstone sweep.

The load-bearing guarantees:

- **Calibration** — every family member realises exactly the planned
  footprint at any ``footprint_mb``, carries its density label, and
  passes the same :mod:`repro.workloads.validation` audit as the paper
  suite (footprint, miss band, region density).
- **Integration** — the families are reachable through the ordinary
  suite loader (``load_workload(name, footprint_mb=...)``), the
  experiment caches, and the CLI, without perturbing paper workloads.
- **Determinism** — the sweep's rows match between the scalar and batch
  engines, and ``benchmarks/bench_modern.py`` produces an identical
  document at any ``--jobs``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import modern as modern_experiment
from repro.experiments.common import clear_caches, configure_engine
from repro.workloads.modern import (
    MODERN_WORKLOADS,
    PAGES_PER_MB,
    load_modern_workload,
)
from repro.workloads.suite import PAPER_WORKLOADS, load_workload
from repro.workloads.validation import check_workload


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


# ---------------------------------------------------------------------------
# The families
# ---------------------------------------------------------------------------
class TestFamilies:
    def test_registry_has_the_four_models(self):
        assert sorted(MODERN_WORKLOADS) == [
            "compiler", "kv-store", "ml-training", "web-server",
        ]
        assert not set(MODERN_WORKLOADS) & set(PAPER_WORKLOADS)

    @pytest.mark.parametrize("name", sorted(MODERN_WORKLOADS))
    @pytest.mark.parametrize("footprint_mb", [2, 16, 1024])
    def test_plan_realises_the_footprint(self, name, footprint_mb):
        family = MODERN_WORKLOADS[name]
        budget = footprint_mb * PAGES_PER_MB
        mapped = family.mapped_pages(footprint_mb)
        # Per-region rounding may drop or add a few pages, never more.
        assert abs(mapped - budget) <= len(family.regions_for(footprint_mb))

    @pytest.mark.parametrize("name", sorted(MODERN_WORKLOADS))
    def test_spec_encodes_planned_pages_in_table1(self, name):
        family = MODERN_WORKLOADS[name]
        spec = family.spec_for(8)
        pages = family.mapped_pages(8)
        assert spec.table1[4] == max(1, int(round(pages * 24 / 1024)))
        assert spec.processes == 1
        assert spec.density == family.density

    def test_footprint_scales_monotonically(self):
        family = MODERN_WORKLOADS["kv-store"]
        assert (
            family.mapped_pages(4)
            < family.mapped_pages(64)
            < family.mapped_pages(1024)
        )

    def test_sub_megabyte_footprint_rejected(self):
        with pytest.raises(ConfigurationError):
            MODERN_WORKLOADS["compiler"].regions_for(0.25)

    def test_unknown_modern_name_rejected(self):
        with pytest.raises(ConfigurationError, match="kv-store"):
            load_modern_workload("redis")


# ---------------------------------------------------------------------------
# Suite-loader integration
# ---------------------------------------------------------------------------
class TestLoader:
    def test_load_workload_builds_exact_footprint(self):
        family = MODERN_WORKLOADS["ml-training"]
        workload = load_workload(
            "ml-training", trace_length=2_000, footprint_mb=4
        )
        assert workload.total_mapped_pages() == family.mapped_pages(4)
        assert len(workload.spaces) == 1
        assert workload.trace is not None

    def test_load_workload_is_deterministic(self):
        a = load_workload("web-server", trace_length=2_000, footprint_mb=4)
        b = load_workload("web-server", trace_length=2_000, footprint_mb=4)
        assert sorted(a.spaces[0]) == sorted(b.spaces[0])
        assert np.array_equal(a.trace.vpns, b.trace.vpns)

    def test_footprint_knob_rejected_for_paper_workloads(self):
        with pytest.raises(ConfigurationError, match="Table 1"):
            load_workload("gcc", trace_length=1_000, footprint_mb=4)

    def test_unknown_name_lists_modern_workloads(self):
        with pytest.raises(ConfigurationError) as excinfo:
            load_workload("memcached")
        assert "kv-store" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Calibration audit
# ---------------------------------------------------------------------------
class TestCalibration:
    @pytest.mark.parametrize("name", sorted(MODERN_WORKLOADS))
    def test_audit_passes_at_default_footprint(self, name):
        check = check_workload(name, trace_length=30_000)
        assert check.ok, check.problems
        assert check.footprint_ratio == pytest.approx(1.0, abs=0.01)
        assert check.target_miss_ratio is None  # band, not Table 1

    @pytest.mark.parametrize("name", sorted(MODERN_WORKLOADS))
    def test_audit_passes_at_small_footprint(self, name):
        check = check_workload(name, trace_length=30_000, footprint_mb=16)
        assert check.ok, check.problems

    def test_density_labels_cover_all_three_classes(self):
        labels = {family.density for family in MODERN_WORKLOADS.values()}
        assert labels == {"dense", "bursty", "sparse"}


# ---------------------------------------------------------------------------
# The capstone sweep
# ---------------------------------------------------------------------------
class TestExperiment:
    def test_select_workloads_filters_and_falls_back(self):
        assert modern_experiment.select_workloads(None) == tuple(
            MODERN_WORKLOADS
        )
        assert modern_experiment.select_workloads(
            ("gcc", "kv-store")
        ) == ("kv-store",)
        assert modern_experiment.select_workloads(("gcc",)) == tuple(
            MODERN_WORKLOADS
        )

    def test_sweep_buckets_scales_with_footprint(self):
        assert modern_experiment.sweep_buckets(1_000) == 4096
        assert modern_experiment.sweep_buckets(1 << 20) == 1 << 18
        # Power of two, ~4 entries/bucket.
        buckets = modern_experiment.sweep_buckets(3_000_000)
        assert buckets & (buckets - 1) == 0
        assert 2 <= 3_000_000 / buckets <= 8

    def test_parse_footprints(self):
        assert modern_experiment.parse_footprints("16,64") == (16, 64)
        assert modern_experiment.parse_footprints("1.5") == (1.5,)

    def test_run_produces_a_row_per_cell(self):
        result = modern_experiment.run(
            trace_length=2_000, workloads=("compiler",),
            footprints=(2, 4), tables=("hashed", "clustered"),
        )
        labels = [row[0] for row in result.rows]
        assert labels == [
            "compiler/2MB/hashed", "compiler/2MB/clustered",
            "compiler/4MB/hashed", "compiler/4MB/clustered",
        ]
        by_label = result.by_label()
        # Figure 9 normalisation: hashed is the unit.
        assert by_label["compiler/2MB/hashed"][1] == 1.0
        # Figure 11: every replayed miss costs at least one line.
        assert all(row[3] >= 1.0 for row in result.rows)

    def test_scalar_and_batch_rows_match(self):
        rows = {}
        for engine in ("scalar", "batch"):
            clear_caches()
            configure_engine(engine)
            try:
                rows[engine] = modern_experiment.run_config(
                    "kv-store", 2, ("hashed", "clustered"),
                    trace_length=2_000,
                )
            finally:
                configure_engine("scalar")
        assert rows["scalar"] == rows["batch"]


# ---------------------------------------------------------------------------
# Bench artifact determinism
# ---------------------------------------------------------------------------
class TestBench:
    def test_bench_document_is_jobs_invariant(self):
        bench = pytest.importorskip(
            "benchmarks.bench_modern",
            reason="benchmarks/ requires the repository root on sys.path",
        )
        docs = {
            jobs: bench.collect(
                trace_length=2_000, footprints=(2,), jobs=jobs
            )
            for jobs in (1, 4)
        }
        assert json.dumps(docs[1], sort_keys=True) == json.dumps(
            docs[4], sort_keys=True
        )
        assert len(docs[1]["rows"]) == len(MODERN_WORKLOADS) * len(
            modern_experiment.DEFAULT_TABLES
        )

    def test_bench_resume_reuses_journal(self, tmp_path):
        bench = pytest.importorskip(
            "benchmarks.bench_modern",
            reason="benchmarks/ requires the repository root on sys.path",
        )
        run_dir = tmp_path / "bench-run"
        fresh = bench.collect(
            trace_length=2_000, footprints=(2,), run_dir=str(run_dir)
        )
        resumed = bench.collect(
            trace_length=2_000, footprints=(2,), run_dir=str(run_dir),
            resume=True,
        )
        assert fresh == resumed
