"""Two-phase simulation: equivalence with the integrated MMU.

The fast path's whole validity rests on the miss stream being independent
of the page table organisation; these tests verify that claim empirically
by running the same trace through both paths and comparing every metric.
"""

import numpy as np
import pytest

from repro.addr.layout import AddressLayout
from repro.analysis.metrics import make_table
from repro.core.clustered import ClusteredPageTable
from repro.errors import PageFaultError
from repro.mmu.mmu import MMU
from repro.mmu.simulate import collect_misses, replay_misses
from repro.mmu.subblock_tlb import CompleteSubblockTLB, PartialSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.promotion import DynamicPageSizePolicy
from repro.os.translation_map import TranslationMap
from repro.workloads.suite import load_workload
from repro.workloads.trace import Trace


@pytest.fixture(scope="module")
def workload():
    return load_workload("mp3d", trace_length=20_000)


@pytest.fixture(scope="module")
def tmap(workload):
    return TranslationMap.from_space(workload.union_space())


def test_collect_misses_counts_match_tlb(workload, tmap):
    stream = collect_misses(workload.trace, FullyAssociativeTLB(64), tmap)
    assert stream.misses == len(stream.vpns)
    assert stream.accesses == len(workload.trace)
    assert 0 < stream.misses < stream.accesses


def test_unmapped_reference_raises(layout):
    tmap = TranslationMap.from_space(
        __import__("repro.addr.space", fromlist=["AddressSpace"]).AddressSpace(layout)
    )
    trace = Trace(np.array([5], dtype=np.int64))
    with pytest.raises(PageFaultError):
        collect_misses(trace, FullyAssociativeTLB(4), tmap)


@pytest.mark.parametrize("table_name", ["hashed", "clustered", "linear-1lvl"])
def test_two_phase_equals_integrated_mmu(workload, tmap, table_name):
    """lines-per-miss must agree exactly between the two simulators."""
    # Two-phase path.
    stream = collect_misses(workload.trace, FullyAssociativeTLB(64), tmap)
    fast_table = make_table(table_name)
    tmap.populate(fast_table, base_pages_only=True)
    replay = replay_misses(stream, fast_table)

    # Integrated path.
    slow_table = make_table(table_name)
    tmap.populate(slow_table, base_pages_only=True)
    mmu = MMU(FullyAssociativeTLB(64), slow_table)
    mmu.run_trace(workload.trace)

    assert mmu.stats.tlb_misses == stream.misses
    assert mmu.stats.cache_lines == replay.cache_lines


def test_two_phase_superpage_tlb_equivalence(workload):
    tmap = TranslationMap.from_space(
        workload.union_space(), DynamicPageSizePolicy(enable_subblocks=False)
    )
    stream = collect_misses(
        workload.trace, SuperpageTLB(64, page_sizes=(1, 16)), tmap
    )
    fast = ClusteredPageTable(workload.layout)
    tmap.populate(fast)
    replay = replay_misses(stream, fast)

    slow = ClusteredPageTable(workload.layout)
    tmap.populate(slow)
    mmu = MMU(SuperpageTLB(64, page_sizes=(1, 16)), slow)
    mmu.run_trace(workload.trace)
    assert mmu.stats.tlb_misses == stream.misses
    assert mmu.stats.cache_lines == replay.cache_lines


def test_two_phase_partial_subblock_equivalence(workload):
    tmap = TranslationMap.from_space(
        workload.union_space(), DynamicPageSizePolicy()
    )
    stream = collect_misses(
        workload.trace, PartialSubblockTLB(64, subblock_factor=16), tmap
    )
    fast = ClusteredPageTable(workload.layout)
    tmap.populate(fast)
    replay = replay_misses(stream, fast)

    slow = ClusteredPageTable(workload.layout)
    tmap.populate(slow)
    mmu = MMU(PartialSubblockTLB(64, subblock_factor=16), slow)
    mmu.run_trace(workload.trace)
    assert mmu.stats.tlb_misses == stream.misses
    assert mmu.stats.cache_lines == replay.cache_lines


def test_two_phase_complete_subblock_equivalence(workload, tmap):
    stream = collect_misses(
        workload.trace, CompleteSubblockTLB(64, subblock_factor=16), tmap
    )
    fast = ClusteredPageTable(workload.layout)
    tmap.populate(fast, base_pages_only=True)
    replay = replay_misses(stream, fast, complete_subblock=True)

    slow = ClusteredPageTable(workload.layout)
    tmap.populate(slow, base_pages_only=True)
    mmu = MMU(CompleteSubblockTLB(64, subblock_factor=16), slow)
    mmu.run_trace(workload.trace)
    assert mmu.stats.tlb_misses == stream.misses
    assert mmu.stats.cache_lines == replay.cache_lines


def test_context_switches_flush(workload, tmap):
    # A trace with switch points must miss more than the same trace
    # without them.
    plain = Trace(workload.trace.vpns, name="plain")
    switchy = Trace(
        workload.trace.vpns, name="switchy",
        switch_points=list(range(1000, len(plain), 1000)),
    )
    base = collect_misses(plain, FullyAssociativeTLB(64), tmap)
    flushed = collect_misses(switchy, FullyAssociativeTLB(64), tmap)
    assert flushed.misses > base.misses


def test_replay_counts_kinds(workload):
    tmap = TranslationMap.from_space(
        workload.union_space(), DynamicPageSizePolicy()
    )
    stream = collect_misses(
        workload.trace, PartialSubblockTLB(64, subblock_factor=16), tmap
    )
    table = ClusteredPageTable(workload.layout)
    tmap.populate(table)
    replay = replay_misses(stream, table)
    assert sum(replay.by_kind.values()) == replay.misses
    assert replay.faults == 0


def test_complete_subblock_replay_survives_faulting_lookup(layout):
    """Regression: the complete-subblock branch let PageFaultError escape.

    A subblock miss (``block_miss[i]`` False) whose VPN the page table no
    longer maps must be counted in ``faults`` — same contract as the
    non-block replay path — not crash the replay.
    """
    import numpy as np

    from repro.core.clustered import ClusteredPageTable
    from repro.mmu.simulate import MissStream

    table = ClusteredPageTable(layout)
    mapped = 0x100
    table.insert(mapped, 0x40)
    unmapped = 0x900  # different block, never inserted
    stream = MissStream(
        trace_name="synthetic", tlb_description="complete-subblock",
        vpns=np.array([mapped, unmapped], dtype=np.int64),
        block_miss=np.array([False, False]),
        accesses=10, misses=2, tlb_block_misses=0, tlb_subblock_misses=2,
    )
    replay = replay_misses(stream, table, complete_subblock=True)
    assert replay.faults == 1
    assert replay.misses == 2
    assert sum(replay.by_kind.values()) == 1  # only the successful walk

    # Identical fault accounting on the non-block path.
    assert replay_misses(stream, table, complete_subblock=False).faults == 1


def test_block_miss_on_unmapped_vpn_is_a_fault_not_a_walk(layout):
    """Regression: a block miss whose missed VPN the block fetch left
    unmapped was charged lines/probes/by_kind as if it resolved.

    The block fetch itself still runs (and its cost lands in the table's
    WalkStats), but the *replay* must count the miss as a fault and
    charge it nothing — exactly like the single-PTE walk path does.
    """
    import numpy as np

    from repro.core.clustered import ClusteredPageTable
    from repro.mmu.simulate import MissStream

    table = ClusteredPageTable(layout)
    table.insert(0x100, 0x40)  # boff 0 of the block holding 0x100
    hole = 0x105  # same block, never inserted
    stream = MissStream(
        trace_name="synthetic", tlb_description="complete-subblock",
        vpns=np.array([0x100, hole], dtype=np.int64),
        block_miss=np.array([True, True]),
        accesses=10, misses=2, tlb_block_misses=2, tlb_subblock_misses=0,
    )
    replay = replay_misses(stream, table, complete_subblock=True)
    assert replay.faults == 1
    assert sum(replay.by_kind.values()) == 1  # only the mapped miss
    # Both block fetches walked the table; only one resolved its VPN.
    assert table.stats.lookups == 2
