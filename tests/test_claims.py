"""The claims verifier's reporting machinery (the full verify() run is the
acceptance gate exercised by `python -m repro experiment claims`)."""

from repro.experiments.claims import Claim, report


def test_report_renders_verdicts():
    claims = [
        Claim("§3/Fig9", "clustered smallest", "11/11", True),
        Claim("§6/Fig10", "savings 80%", "83%", True),
        Claim("§X", "something broken", "nope", False),
    ]
    result = report(claims)
    text = result.render()
    assert "PASS" in text and "FAIL" in text
    assert "2/3 claims hold." in text


def test_report_counts_all_passing():
    claims = [Claim("a", "b", "c", True)]
    assert "1/1 claims hold." in report(claims).notes


def test_claim_fields():
    claim = Claim("§1", "statement", "measured", holds=False)
    assert not claim.holds
    assert claim.source == "§1"
