"""The line-counting cache model (§6.1 accounting assumptions)."""

import pytest

from repro.errors import ConfigurationError
from repro.mmu.cache_model import CacheModel, DEFAULT_CACHE


class TestConstruction:
    def test_default_is_256(self):
        assert DEFAULT_CACHE.line_size == 256

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheModel(line_size=100)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            CacheModel(line_size=0)


class TestLinesTouched:
    def test_single_small_read(self):
        assert DEFAULT_CACHE.lines_touched([(0, 8)]) == 1

    def test_reads_in_same_line_coalesce(self):
        assert DEFAULT_CACHE.lines_touched([(0, 16), (128, 8)]) == 1

    def test_read_straddling_lines(self):
        assert DEFAULT_CACHE.lines_touched([(250, 8)]) == 2

    def test_disjoint_lines_counted_once_each(self):
        model = CacheModel(64)
        assert model.lines_touched([(0, 8), (64, 8), (70, 8)]) == 2

    def test_clustered_node_geometry_64B(self):
        # The §6.3 case: tag at 0, slot 15 at byte 136, 64-byte lines.
        model = CacheModel(64)
        assert model.lines_touched([(0, 16), (136, 8)]) == 2
        assert model.lines_touched([(0, 16), (16, 8)]) == 1

    def test_empty_and_zero_reads(self):
        assert DEFAULT_CACHE.lines_touched([]) == 0
        assert DEFAULT_CACHE.lines_touched([(0, 0)]) == 0


class TestLinesForNode:
    def test_exact_fit(self):
        assert CacheModel(64).lines_for_node(64) == 1

    def test_rounding_up(self):
        assert CacheModel(64).lines_for_node(144) == 3
        assert CacheModel(128).lines_for_node(144) == 2
        assert CacheModel(256).lines_for_node(144) == 1

    def test_zero_node(self):
        assert DEFAULT_CACHE.lines_for_node(0) == 0
