"""Backoff math, retry budgets, and error classification."""

import errno

import pytest

from repro.cache.stream_cache import StreamCacheError
from repro.errors import ConfigurationError, PageFaultError
from repro.resilience.retry import (
    AttemptRecord,
    RetryPolicy,
    TaskTimeoutError,
    backoff_delay,
    backoff_schedule,
    call_with_retry,
    classify_error,
    task_rng,
)


class TestBackoffDelay:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.1, multiplier=2.0,
            max_delay=100.0, jitter=0.0,
        )
        delays = [backoff_delay(policy, n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_retries=10, base_delay=1.0, multiplier=10.0,
            max_delay=5.0, jitter=0.0,
        )
        assert backoff_delay(policy, 4) == 5.0

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(
            max_retries=3, base_delay=0.1, multiplier=2.0, jitter=0.25,
        )
        for seed in range(200):
            rng = task_rng(RetryPolicy(seed=seed), f"task-{seed}")
            for attempt in (1, 2, 3):
                nominal = min(
                    policy.max_delay,
                    policy.base_delay * policy.multiplier ** (attempt - 1),
                )
                delay = backoff_delay(policy, attempt, rng)
                assert nominal * 0.75 <= delay < nominal * 1.25

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(RetryPolicy(), 0)

    def test_schedule_is_deterministic_per_key(self):
        policy = RetryPolicy(max_retries=4, jitter=0.2, seed=7)
        assert backoff_schedule(policy, "a") == backoff_schedule(policy, "a")
        assert backoff_schedule(policy, "a") != backoff_schedule(policy, "b")

    def test_schedule_length_equals_budget(self):
        assert len(backoff_schedule(RetryPolicy(max_retries=3))) == 3
        assert backoff_schedule(RetryPolicy(max_retries=0)) == ()


class TestPolicyValidation:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestClassification:
    @pytest.mark.parametrize("exc", [
        TaskTimeoutError("t", 1.0),
        StreamCacheError("damaged", reason="unreadable"),
        OSError(errno.ENOSPC, "no space"),
        OSError(errno.EIO, "I/O error"),
        PermissionError("denied"),
        MemoryError(),
    ])
    def test_transient(self, exc):
        assert classify_error(exc) == "transient"

    @pytest.mark.parametrize("exc", [
        ConfigurationError("bad config"),
        PageFaultError(0x10),
        ValueError("bug"),
        TypeError("bug"),
        KeyError("bug"),
    ])
    def test_fatal(self, exc):
        assert classify_error(exc) == "fatal"


class TestCallWithRetry:
    def test_success_passes_result_through(self):
        assert call_with_retry(lambda attempt: 42, RetryPolicy()) == 42

    def test_transient_failures_are_retried(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise OSError(errno.EIO, "transient")
            return "ok"

        policy = RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0)
        assert call_with_retry(flaky, policy) == "ok"
        assert calls == [1, 2, 3]

    def test_fatal_failures_are_not_retried(self):
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise ConfigurationError("permanently wrong")

        policy = RetryPolicy(max_retries=5, base_delay=0.0)
        with pytest.raises(ConfigurationError):
            call_with_retry(broken, policy)
        assert calls == [1]

    def test_exhaustion_reraises_original_with_history(self):
        errors = [
            OSError(errno.ENOSPC, "first"),
            OSError(errno.EIO, "second"),
            OSError(errno.EIO, "third"),
        ]

        def always_failing(attempt):
            raise errors[attempt - 1]

        policy = RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(OSError) as excinfo:
            call_with_retry(always_failing, policy)
        assert excinfo.value is errors[2]  # the original final exception
        history = excinfo.value.retry_history
        assert len(history) == 3
        assert all(isinstance(record, AttemptRecord) for record in history)
        assert [record.attempt for record in history] == [1, 2, 3]
        assert "first" in history[0].error and "third" in history[2].error

    def test_zero_retries_is_a_transparent_pass_through(self):
        """max_retries=0 reproduces today's fail-fast bit for bit."""
        sleeps = []
        error = OSError(errno.EIO, "boom")

        def failing(attempt):
            raise error

        with pytest.raises(OSError) as excinfo:
            call_with_retry(
                failing, RetryPolicy(max_retries=0), sleep=sleeps.append
            )
        assert excinfo.value is error  # same object, not a wrapper
        assert sleeps == []  # and no backoff was taken

    def test_on_retry_callback_sees_each_backoff(self):
        seen = []

        def flaky(attempt):
            if attempt == 1:
                raise OSError(errno.EIO, "once")
            return "ok"

        policy = RetryPolicy(max_retries=1, base_delay=0.0, jitter=0.0)
        call_with_retry(
            flaky, policy,
            on_retry=lambda attempt, exc, delay: seen.append(
                (attempt, type(exc).__name__, delay)
            ),
        )
        assert seen == [(1, "OSError", 0.0)]

    def test_sleep_receives_the_backoff_schedule(self):
        sleeps = []

        def failing(attempt):
            raise OSError(errno.EIO, "always")

        policy = RetryPolicy(
            max_retries=3, base_delay=0.1, multiplier=2.0, jitter=0.0
        )
        with pytest.raises(OSError):
            call_with_retry(failing, policy, sleep=sleeps.append)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])


def test_task_timeout_error_carries_key_and_budget():
    error = TaskTimeoutError("fig11d", 2.5)
    assert error.key == "fig11d"
    assert error.seconds == 2.5
    assert "fig11d" in str(error) and "2.5" in str(error)
