"""TLB entry construction: the miss handler's capability downgrades."""

import pytest

from repro.mmu.fill import block_entry, build_entry
from repro.mmu.subblock_tlb import CompleteSubblockTLB, PartialSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB
from repro.addr.space import Mapping
from repro.os.translation_map import LogicalPTE
from repro.pagetables.pte import PTEKind


def base_record(vpn, ppn):
    return LogicalPTE(
        kind=PTEKind.BASE, base_vpn=vpn, npages=1, base_ppn=ppn, attrs=0,
        valid_mask=1,
    )


def superpage_record(base_vpn, npages, base_ppn):
    return LogicalPTE(
        kind=PTEKind.SUPERPAGE, base_vpn=base_vpn, npages=npages,
        base_ppn=base_ppn, attrs=0, valid_mask=(1 << npages) - 1,
    )


def psb_record(base_vpn, mask, base_ppn):
    return LogicalPTE(
        kind=PTEKind.PARTIAL_SUBBLOCK, base_vpn=base_vpn, npages=16,
        base_ppn=base_ppn, attrs=0, valid_mask=mask,
    )


class TestSinglePageTLB:
    def test_base_record_fills_single_page(self):
        tlb = FullyAssociativeTLB(4)
        entry = build_entry(tlb, base_record(0x10, 0x20), 0x10, 0x20)
        assert entry.npages == 1 and entry.base_ppn == 0x20

    def test_superpage_downgrades_to_faulting_page(self):
        tlb = FullyAssociativeTLB(4)
        record = superpage_record(0x100, 16, 0x400)
        entry = build_entry(tlb, record, 0x105, 0x405)
        assert entry.npages == 1
        assert entry.base_vpn == 0x105 and entry.base_ppn == 0x405

    def test_psb_downgrades_to_faulting_page(self):
        tlb = FullyAssociativeTLB(4)
        record = psb_record(0x100, 0b100000, 0x400)
        entry = build_entry(tlb, record, 0x105, 0x405)
        assert entry.npages == 1 and entry.base_ppn == 0x405


class TestSuperpageTLB:
    def test_native_superpage_fill(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        entry = build_entry(tlb, superpage_record(0x100, 16, 0x400), 0x105, 0x405)
        assert entry.npages == 16 and entry.base_vpn == 0x100
        assert entry.kind is PTEKind.SUPERPAGE

    def test_oversized_superpage_fills_aligned_subrange(self):
        # A 64-page superpage in a (1,16) TLB: fill the 16-page aligned
        # sub-block containing the faulting page.
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        record = superpage_record(0x400, 64, 0x800)
        entry = build_entry(tlb, record, 0x425, 0x825)
        assert entry.npages == 16
        assert entry.base_vpn == 0x420 and entry.base_ppn == 0x820

    def test_full_psb_promoted_to_superpage_entry(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        record = psb_record(0x100, 0xFFFF, 0x400)
        entry = build_entry(tlb, record, 0x105, 0x405)
        assert entry.npages == 16 and entry.kind is PTEKind.SUPERPAGE

    def test_partial_psb_downgrades_to_page(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        record = psb_record(0x100, 0b100000, 0x400)
        entry = build_entry(tlb, record, 0x105, 0x405)
        assert entry.npages == 1


class TestPartialSubblockTLB:
    def test_native_psb_fill(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        record = psb_record(0x100, 0b1010, 0x400)
        entry = build_entry(tlb, record, 0x101, 0x401)
        assert entry.npages == 16 and entry.valid_mask == 0b1010

    def test_block_superpage_fills_full_mask(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        entry = build_entry(tlb, superpage_record(0x100, 16, 0x400), 0x105, 0x405)
        assert entry.npages == 16 and entry.valid_mask == 0xFFFF

    def test_base_record_fills_single_page(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        entry = build_entry(tlb, base_record(0x105, 0x77), 0x105, 0x77)
        assert entry.npages == 1


class TestCompleteSubblockTLB:
    def test_base_record_fills_one_slot(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        entry = build_entry(tlb, base_record(0x105, 0x77), 0x105, 0x77)
        assert entry.npages == 16
        assert entry.ppns[5] == 0x77
        assert entry.valid_mask == 1 << 5

    def test_wide_record_exposes_all_pages(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        record = psb_record(0x100, 0b111, 0x400)
        entry = build_entry(tlb, record, 0x101, 0x401)
        assert entry.valid_mask == 0b111
        assert entry.ppns[0] == 0x400 and entry.ppns[2] == 0x402

    def test_block_entry_from_prefetch(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        mappings = [Mapping(0x900 + i) if i < 4 else None for i in range(16)]
        entry = block_entry(tlb, 0x100, mappings)
        assert entry.valid_mask == 0xF
        assert entry.ppns[3] == 0x903
        assert entry.translates(0x103)
        assert not entry.translates(0x104)

    def test_block_entry_all_empty(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        entry = block_entry(tlb, 0x100, [None] * 16)
        assert entry.valid_mask == 0
