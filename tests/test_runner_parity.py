"""Differential tests: parallel runner ≡ serial runner ≡ cached replays.

Three layers of cross-validation:

1. ``run_all(jobs>1)`` must produce bit-identical ``ExperimentResult``
   tables to the serial path (deterministic merge, deterministic
   experiments).
2. A warm persistent cache must change *nothing* except the work done:
   identical tables with zero phase-1 computations.
3. Replaying a cached (serialised + reloaded) stream must match both a
   fresh ``collect_misses`` replay and the integrated ``MMU`` oracle on
   randomized (trace, TLB, table) configurations.
"""

import random
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.analysis.metrics import make_table
from repro.cache.stream_cache import StreamCache, stream_cache_key
from repro.errors import ConfigurationError
from repro.experiments import common, runner
from repro.mmu.mmu import MMU
from repro.mmu.simulate import collect_misses, replay_misses
from repro.os.translation_map import TranslationMap

#: A small but representative runner subset: stream-replay experiments
#: (table1, fig11d with block prefetch) plus the direct-collect_misses
#: multiprogramming study.
SUBSET = ("table1", "fig11d", "multiprog")
WORKLOADS = ("mp3d", "compress")
TRACE_LENGTH = 12_000


def results_fingerprint(results):
    """Rendered text of every result, keyed by id, order preserved."""
    return [(key, result.render(precision=3))
            for key, result in results.items()]


@pytest.fixture(autouse=True)
def _isolated(tmp_path):
    common.clear_caches()
    yield
    common.clear_caches()
    common.configure_stream_cache(None)


class TestRunnerParity:
    def test_parallel_matches_serial_and_warm_cache_is_pure(self, tmp_path):
        cache_dir = str(tmp_path / "streams")

        serial, serial_metrics = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=1, cache_dir=cache_dir,
            workloads=WORKLOADS, only=SUBSET,
        )
        assert list(serial) == list(SUBSET)
        assert serial_metrics.cache.misses > 0  # cold cache computed streams

        common.clear_caches()
        parallel, parallel_metrics = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=2, cache_dir=cache_dir,
            workloads=WORKLOADS, only=SUBSET,
        )
        assert results_fingerprint(parallel) == results_fingerprint(serial)
        # Warm cache: the parallel run performed zero phase-1 simulations.
        assert parallel_metrics.cache.misses == 0
        assert parallel_metrics.cache.hits > 0
        assert parallel_metrics.prewarm_tasks > 0

        # And a cache-less parallel run still agrees bit-for-bit.
        common.clear_caches()
        uncached = runner.run_all(
            TRACE_LENGTH, jobs=2, cache_dir=None,
            workloads=WORKLOADS, only=SUBSET,
        )
        assert results_fingerprint(uncached) == results_fingerprint(serial)

    def test_cache_summary_matches_between_serial_and_parallel(self, tmp_path):
        """Regression: the summary line must not depend on the job count.

        The serial path used to merge the whole-process ``cache.stats``
        while the parallel path merged per-worker deltas, so the same run
        reported different hit/miss counts under ``--jobs 1`` and
        ``--jobs N``.  Both paths now run the same prewarm stage and
        account per-task deltas.
        """
        subset = ("table1", "fig11d")
        names = ("mp3d",)

        # Cold caches, separately per mode so both start empty.
        cold_serial_dir = str(tmp_path / "cold-serial")
        cold_parallel_dir = str(tmp_path / "cold-parallel")
        _, serial_cold = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=1, cache_dir=cold_serial_dir,
            workloads=names, only=subset,
        )
        common.clear_caches()
        _, parallel_cold = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=2, cache_dir=cold_parallel_dir,
            workloads=names, only=subset,
        )
        assert (
            serial_cold.cache_summary().replace(cold_serial_dir, "DIR")
            == parallel_cold.cache_summary().replace(cold_parallel_dir, "DIR")
        )
        assert serial_cold.prewarm_tasks == parallel_cold.prewarm_tasks

        # Warm cache: both modes over the *same* directory must agree too.
        common.clear_caches()
        _, serial_warm = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=1, cache_dir=cold_serial_dir,
            workloads=names, only=subset,
        )
        common.clear_caches()
        _, parallel_warm = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=2, cache_dir=cold_serial_dir,
            workloads=names, only=subset,
        )
        assert serial_warm.cache_summary() == parallel_warm.cache_summary()
        assert serial_warm.cache.misses == 0
        assert serial_warm.cache.hits == parallel_warm.cache.hits > 0

        # No cache: both report the disabled summary.
        common.clear_caches()
        _, serial_off = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=1, cache_dir=None,
            workloads=names, only=subset,
        )
        common.clear_caches()
        _, parallel_off = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=2, cache_dir=None,
            workloads=names, only=subset,
        )
        assert serial_off.cache_summary() == parallel_off.cache_summary()
        assert "disabled" in serial_off.cache_summary()

    def test_registry_parity_between_serial_and_parallel(self, tmp_path):
        """``--jobs N`` must not lose telemetry: the merged registry's
        counters and walk histograms equal the serial run's exactly.

        Time-valued histograms (phase/task seconds) are excluded — their
        totals are wall-clock and legitimately differ between modes.
        """
        from repro.obs.metrics import get_registry, reset_registry

        def profiled_run(jobs, cache_dir, run_dir):
            common.clear_caches()
            reset_registry()
            _, metrics = runner.run_all_with_metrics(
                TRACE_LENGTH, jobs=jobs, cache_dir=cache_dir,
                workloads=WORKLOADS, only=("table1", "fig11d"),
                resilience=runner.ResilienceConfig(run_dir=run_dir),
                profile=True,
            )
            state = get_registry().state()
            reset_registry()
            return state, metrics

        serial_state, serial_metrics = profiled_run(
            1, str(tmp_path / "cold-serial"), str(tmp_path / "run-serial")
        )
        parallel_state, parallel_metrics = profiled_run(
            2, str(tmp_path / "cold-parallel"), str(tmp_path / "run-parallel")
        )

        assert serial_state["counters"] == parallel_state["counters"]

        def walk_histograms(state):
            return [
                [name, labels, payload]
                for name, labels, payload in state["histograms"]
                if name.startswith("walk.")
            ]

        serial_walks = walk_histograms(serial_state)
        assert serial_walks, "profiled run recorded no walk histograms"
        assert serial_walks == walk_histograms(parallel_state)

        assert serial_metrics.walk_profile is not None
        assert (serial_metrics.walk_profile.as_dict()
                == parallel_metrics.walk_profile.as_dict())

    def test_phase_wall_seconds_are_recorded(self, tmp_path):
        _, metrics = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=1, cache_dir=str(tmp_path / "s"),
            workloads=("mp3d",), only=("table1",),
        )
        assert metrics.prewarm_wall_seconds > 0.0
        assert metrics.experiments_wall_seconds > 0.0
        assert (
            metrics.prewarm_wall_seconds + metrics.experiments_wall_seconds
            <= metrics.wall_seconds * 1.01
        )

    def test_select_experiments_keeps_paper_order(self):
        assert runner.select_experiments(None) == runner.EXPERIMENT_ORDER
        assert runner.select_experiments(
            ["multiprog", "table1"]
        ) == ("table1", "multiprog")
        with pytest.raises(Exception, match="unknown experiment"):
            runner.select_experiments(["nope"])

    def test_prewarm_plan_covers_selected_streams(self):
        plan = runner.stream_prewarm_plan(
            ("table1", "fig11d"), workloads=("mp3d",)
        )
        assert ("mp3d", "single", 64) in plan
        assert ("mp3d", "complete-subblock", 64) in plan
        assert ("mp3d", "complete-subblock", 56) in plan
        assert len(plan) == len(set(plan))  # deduplicated
        # Experiments with no replayed streams contribute nothing.
        assert runner.stream_prewarm_plan(("fig9", "pressure")) == ()


# ---------------------------------------------------------------------------
# Fail-fast: a poisoned worker must surface its error promptly
# ---------------------------------------------------------------------------
class WorkerPoisoned(RuntimeError):
    pass


def _poisoned_task(index: int, delay: float = 0.0) -> int:
    """Pool task: fails on index 0, idles elsewhere (module-level: picklable)."""
    if index == 0:
        raise WorkerPoisoned(f"task {index} poisoned")
    time.sleep(delay)
    return index


class TestFailFast:
    def test_await_or_cancel_raises_first_error_and_cancels_pending(self):
        """Regression: iterating ``.result()`` over all futures used to
        block on every queued slow task before surfacing the failure."""
        with ProcessPoolExecutor(max_workers=1) as pool:
            # One worker: the failing task runs first, the slow ones queue
            # behind it.  Fail-fast must cancel them instead of sleeping
            # through ~20 s of queued work.
            futures = [
                pool.submit(_poisoned_task, index, 2.0) for index in range(10)
            ]
            started = time.perf_counter()
            with pytest.raises(WorkerPoisoned, match="task 0 poisoned"):
                runner._await_or_cancel(pool, futures)
            elapsed = time.perf_counter() - started
        assert elapsed < 10.0  # nowhere near the 18 s of queued sleeps
        assert any(future.cancelled() for future in futures)

    def test_await_or_cancel_returns_results_in_submission_order(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_poisoned_task, index) for index in (3, 1, 2)
            ]
            assert runner._await_or_cancel(pool, futures) == [3, 1, 2]

    def test_bogus_workload_fails_the_parallel_run_promptly(self, tmp_path):
        """End to end: a prewarm worker hitting an unknown workload name
        must propagate ConfigurationError out of ``run_all``."""
        with pytest.raises(ConfigurationError, match="[Uu]nknown workload"):
            runner.run_all(
                TRACE_LENGTH, jobs=2, cache_dir=str(tmp_path / "s"),
                workloads=("mp3d", "no-such-workload"), only=("table1",),
            )


#: Randomized differential configs: (tlb kind, table, base_pages_only)
#: mirrors the Figure 11 pairings of TLB architecture and PTE formats.
_TLB_TABLE_CHOICES = (
    ("single", ("hashed", "clustered", "linear-1lvl", "forward-mapped"), True),
    ("superpage", ("clustered",), False),
    ("partial-subblock", ("clustered",), False),
    ("complete-subblock", ("hashed", "clustered"), True),
)


class TestCachedReplayDifferential:
    def test_cached_stream_replays_match_fresh_and_mmu(self, tmp_path, rng):
        cache = StreamCache(tmp_path / "streams")
        seen_kinds = set()
        for trial in range(6):
            workload_name = rng.choice(("mp3d", "coral"))
            tlb_kind, tables, base_only = rng.choice(_TLB_TABLE_CHOICES)
            table_name = rng.choice(tables)
            seen_kinds.add(tlb_kind)
            entries = rng.choice((32, 64))
            workload = common.get_workload(
                workload_name, trace_length=5_000, seed=rng.randrange(10_000)
            )
            tmap = TranslationMap.from_space(
                workload.union_space(), common.policy_for(tlb_kind)
            )
            tlb = common.TLB_FACTORIES[tlb_kind](entries)
            complete = tlb_kind == "complete-subblock"

            fresh = collect_misses(workload.trace, tlb, tmap)
            key = stream_cache_key(
                workload.trace, common.TLB_FACTORIES[tlb_kind](entries), tmap
            )
            cache.put(key, fresh)
            reloaded = cache.get(key)
            assert reloaded is not None

            def build_table():
                table = make_table(table_name, num_buckets=512)
                tmap.populate(table, base_pages_only=base_only)
                return table

            fresh_replay = replay_misses(
                fresh, build_table(), complete_subblock=complete
            )
            cached_replay = replay_misses(
                reloaded, build_table(), complete_subblock=complete
            )
            assert cached_replay == fresh_replay, (
                f"trial {trial}: {workload_name}/{tlb_kind}/{table_name}"
            )

            # Integrated oracle: one MMU run must agree on both the miss
            # count and the replayed cache-line total.
            mmu = MMU(common.TLB_FACTORIES[tlb_kind](entries), build_table())
            mmu.run_trace(workload.trace)
            assert mmu.stats.tlb_misses == reloaded.misses
            assert mmu.stats.cache_lines == cached_replay.cache_lines
        assert len(seen_kinds) >= 2  # the rng actually varied the hardware
