"""Bit-level PTE formats (paper Figures 1, 6, 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.pagetables.pte import (
    ATTR_MODIFIED,
    ATTR_READ,
    ATTR_WRITE,
    BasePTE,
    PartialSubblockPTE,
    PTEKind,
    SuperpagePTE,
    decode_pte,
    pte_kind,
)


class TestBasePTE:
    def test_roundtrip(self):
        pte = BasePTE(ppn=0xABCDEF, attrs=ATTR_READ | ATTR_MODIFIED)
        assert BasePTE.decode(pte.encode()) == pte

    def test_valid_bit_is_bit_63(self):
        assert BasePTE(ppn=0, attrs=0, valid=True).encode() >> 63 == 1
        assert BasePTE(ppn=0, attrs=0, valid=False).encode() >> 63 == 0

    def test_ppn_field_position(self):
        # Figure 1: PPN occupies bits 12..39.
        word = BasePTE(ppn=0x1, attrs=0).encode()
        assert (word >> 12) & 0xFFFFFFF == 0x1

    def test_attr_field_low_bits(self):
        word = BasePTE(ppn=0, attrs=0xABC).encode()
        assert word & 0xFFF == 0xABC

    def test_fits_in_64_bits(self):
        word = BasePTE(ppn=(1 << 28) - 1, attrs=0xFFF).encode()
        assert word < (1 << 64)

    def test_rejects_oversized_ppn(self):
        with pytest.raises(EncodingError):
            BasePTE(ppn=1 << 28, attrs=0).encode()

    def test_rejects_oversized_attrs(self):
        with pytest.raises(EncodingError):
            BasePTE(ppn=0, attrs=1 << 12).encode()

    def test_kind_marker(self):
        assert pte_kind(BasePTE(ppn=1).encode()) is PTEKind.BASE


class TestSuperpagePTE:
    def test_roundtrip(self):
        pte = SuperpagePTE(ppn=0x4000, npages=16)
        assert SuperpagePTE.decode(pte.encode()) == pte

    def test_size_stored_as_log2(self):
        word = SuperpagePTE(ppn=0, npages=16).encode()
        assert (word >> 59) & 0xF == 4

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(EncodingError):
            SuperpagePTE(ppn=0, npages=12)

    def test_large_superpage_sizes(self):
        for npages in (2, 64, 1 << 15):
            pte = SuperpagePTE(ppn=0, npages=npages)
            assert SuperpagePTE.decode(pte.encode()).npages == npages

    def test_rejects_size_overflowing_sz_field(self):
        with pytest.raises(EncodingError):
            SuperpagePTE(ppn=0, npages=1 << 16)

    def test_ppn_for_offsets(self):
        pte = SuperpagePTE(ppn=0x100, npages=16)
        assert pte.ppn_for(0) == 0x100
        assert pte.ppn_for(15) == 0x10F

    def test_ppn_for_out_of_range(self):
        with pytest.raises(EncodingError):
            SuperpagePTE(ppn=0x100, npages=16).ppn_for(16)

    def test_kind_marker(self):
        assert pte_kind(SuperpagePTE(ppn=0, npages=2).encode()) is PTEKind.SUPERPAGE


class TestPartialSubblockPTE:
    def test_roundtrip(self):
        pte = PartialSubblockPTE(ppn=0x200, valid_mask=0xBEEF)
        assert PartialSubblockPTE.decode(pte.encode()) == pte

    def test_valid_bits_position(self):
        word = PartialSubblockPTE(ppn=0, valid_mask=0x8001).encode()
        assert (word >> 48) & 0xFFFF == 0x8001

    def test_rejects_wide_mask(self):
        with pytest.raises(EncodingError):
            PartialSubblockPTE(ppn=0, valid_mask=1 << 16)

    def test_validity_queries(self):
        pte = PartialSubblockPTE(ppn=0x300, valid_mask=0b1010)
        assert pte.is_valid(1) and pte.is_valid(3)
        assert not pte.is_valid(0) and not pte.is_valid(2)
        assert pte.valid
        assert pte.population() == 2

    def test_empty_mask_not_valid(self):
        assert not PartialSubblockPTE(ppn=0, valid_mask=0).valid

    def test_ppn_for_valid_page(self):
        pte = PartialSubblockPTE(ppn=0x300, valid_mask=0b10)
        assert pte.ppn_for(1) == 0x301

    def test_ppn_for_invalid_page_rejected(self):
        with pytest.raises(EncodingError):
            PartialSubblockPTE(ppn=0x300, valid_mask=0b10).ppn_for(0)

    def test_kind_marker(self):
        word = PartialSubblockPTE(ppn=0, valid_mask=1).encode()
        assert pte_kind(word) is PTEKind.PARTIAL_SUBBLOCK


class TestDecodeDispatch:
    def test_decode_selects_by_s_field(self):
        base = BasePTE(ppn=1, attrs=2)
        superpage = SuperpagePTE(ppn=16, npages=4)
        partial = PartialSubblockPTE(ppn=32, valid_mask=0xF)
        assert decode_pte(base.encode()) == base
        assert decode_pte(superpage.encode()) == superpage
        assert decode_pte(partial.encode()) == partial


@given(
    ppn=st.integers(min_value=0, max_value=(1 << 28) - 1),
    attrs=st.integers(min_value=0, max_value=(1 << 12) - 1),
    valid=st.booleans(),
)
def test_base_pte_roundtrip_property(ppn, attrs, valid):
    pte = BasePTE(ppn=ppn, attrs=attrs, valid=valid)
    assert BasePTE.decode(pte.encode()) == pte


@given(
    ppn=st.integers(min_value=0, max_value=(1 << 28) - 1),
    log_npages=st.integers(min_value=1, max_value=15),
    attrs=st.integers(min_value=0, max_value=(1 << 12) - 1),
)
def test_superpage_pte_roundtrip_property(ppn, log_npages, attrs):
    pte = SuperpagePTE(ppn=ppn, npages=1 << log_npages, attrs=attrs)
    assert SuperpagePTE.decode(pte.encode()) == pte


@given(
    ppn=st.integers(min_value=0, max_value=(1 << 28) - 1),
    mask=st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_partial_subblock_roundtrip_property(ppn, mask):
    pte = PartialSubblockPTE(ppn=ppn, valid_mask=mask)
    decoded = PartialSubblockPTE.decode(pte.encode())
    assert decoded == pte
    assert decoded.population() == bin(mask).count("1")
