"""§7 extensions: ASID TLBs, SMP shootdowns, multi-size configurations,
software-TLB front ends, and the studies built on them."""

import numpy as np
import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.core.multisize import (
    MultiSizeClusteredPageTables,
    conventional_multisize,
)
from repro.errors import AlignmentError, ConfigurationError, PageFaultError
from repro.mmu.asid import ASIDTaggedTLB
from repro.mmu.simulate import collect_misses
from repro.mmu.tlb import FullyAssociativeTLB, TLBEntry
from repro.os.shootdown import SMPSystem
from repro.os.translation_map import TranslationMap
from repro.pagetables.forward import ForwardMappedPageTable
from repro.pagetables.pte import PTEKind
from repro.pagetables.software_tlb import SoftwareTLBTable
from repro.workloads.trace import Trace


def base_entry(vpn, ppn):
    return TLBEntry(base_vpn=vpn, npages=1, base_ppn=ppn, attrs=0,
                    valid_mask=1, kind=PTEKind.BASE)


class TestASIDTaggedTLB:
    def test_same_vpn_different_asids_coexist(self):
        tlb = ASIDTaggedTLB(FullyAssociativeTLB(8))
        tlb.switch_to(1)
        tlb.fill(base_entry(0x10, 0xA))
        tlb.switch_to(2)
        tlb.fill(base_entry(0x10, 0xB))
        assert tlb.lookup(0x10).ppn_for(0x10) == 0xB
        tlb.switch_to(1)
        assert tlb.lookup(0x10).ppn_for(0x10) == 0xA

    def test_no_cross_asid_hits(self):
        tlb = ASIDTaggedTLB(FullyAssociativeTLB(8))
        tlb.switch_to(1)
        tlb.fill(base_entry(0x10, 0xA))
        tlb.switch_to(2)
        assert tlb.lookup(0x10) is None

    def test_switch_without_flush_retains_entries(self):
        tlb = ASIDTaggedTLB(FullyAssociativeTLB(8))
        tlb.switch_to(1)
        tlb.fill(base_entry(0x10, 0xA))
        tlb.switch_to(2)
        tlb.switch_to(1)
        assert tlb.lookup(0x10) is not None
        assert tlb.switches == 3  # 0->1, 1->2, 2->1

    def test_flush_asid_targets_one_space(self):
        tlb = ASIDTaggedTLB(FullyAssociativeTLB(8))
        tlb.switch_to(1)
        tlb.fill(base_entry(0x10, 0xA))
        tlb.switch_to(2)
        tlb.fill(base_entry(0x20, 0xB))
        assert tlb.flush_asid(1) == 1
        assert tlb.resident_asids() == {2}

    def test_negative_asid_rejected(self):
        with pytest.raises(ConfigurationError):
            ASIDTaggedTLB(FullyAssociativeTLB(4)).switch_to(-1)

    def test_capacity_shared_across_asids(self):
        tlb = ASIDTaggedTLB(FullyAssociativeTLB(2))
        tlb.switch_to(1)
        tlb.fill(base_entry(0x10, 1))
        tlb.switch_to(2)
        tlb.fill(base_entry(0x10, 2))
        tlb.fill(base_entry(0x11, 3))
        tlb.switch_to(1)
        assert tlb.lookup(0x10) is None  # evicted by ASID 2's fills


class TestASIDSimulation:
    def test_asid_beats_flushing_when_working_sets_fit(self, layout):
        tmap_space = __import__(
            "repro.addr.space", fromlist=["AddressSpace"]
        ).AddressSpace(layout)
        # Two processes, 20 pages each, disjoint VAs.
        for vpn in list(range(0, 20)) + list(range(1000, 1020)):
            tmap_space.map(vpn, vpn + 100)
        tmap = TranslationMap.from_space(tmap_space)
        proc0 = np.tile(np.arange(0, 20, dtype=np.int64), 50)
        proc1 = np.tile(np.arange(1000, 1020, dtype=np.int64), 50)
        trace = Trace.interleave(
            [Trace(proc0), Trace(proc1)], quantum=100
        )
        flush = collect_misses(trace, FullyAssociativeTLB(64), tmap)
        asid = collect_misses(
            trace, ASIDTaggedTLB(FullyAssociativeTLB(64)), tmap
        )
        assert asid.misses == 40           # compulsory only
        assert flush.misses > 4 * asid.misses


class TestSMPSystem:
    def make(self, layout, ncpus=3, batch=True):
        table = ClusteredPageTable(layout)
        for vpn in range(0x100, 0x140):
            table.insert(vpn, vpn + 0x1000)
        return SMPSystem(
            table, lambda: FullyAssociativeTLB(16), ncpus=ncpus,
            batch_range_shootdowns=batch,
        ), table

    def test_translate_per_cpu(self, layout):
        smp, _ = self.make(layout)
        assert smp.translate(0, 0x100) == 0x1100
        assert smp.translate(2, 0x100) == 0x1100
        assert smp.total_tlb_misses() == 2  # private TLBs

    def test_unmap_invalidates_everywhere(self, layout):
        smp, table = self.make(layout)
        for cpu in range(3):
            smp.translate(cpu, 0x100)
        smp.unmap(0x100)
        assert smp.stats.ipis_sent == 2
        assert smp.stats.entries_invalidated == 3
        with pytest.raises(PageFaultError):
            smp.translate(0, 0x100)

    def test_batched_range_shootdown_single_round(self, layout):
        smp, _ = self.make(layout, batch=True)
        smp.unmap_range(0x100, 16)
        assert smp.stats.shootdowns == 1
        assert smp.stats.ipis_sent == 2

    def test_unbatched_range_shootdown_per_page(self, layout):
        smp, _ = self.make(layout, batch=False)
        smp.unmap_range(0x100, 16)
        assert smp.stats.shootdowns == 16
        assert smp.stats.ipis_sent == 32

    def test_protect_range_invalidates_stale_entries(self, layout):
        smp, table = self.make(layout)
        smp.translate(1, 0x100)
        smp.protect_range(0x100, 4, attrs=0x1)
        assert smp.stats.entries_invalidated >= 1
        assert table.lookup(0x100).attrs == 0x1

    def test_rejects_zero_cpus(self, layout):
        with pytest.raises(ConfigurationError):
            SMPSystem(ClusteredPageTable(layout),
                      lambda: FullyAssociativeTLB(4), ncpus=0)


class TestMultiSizeClusteredTables:
    def test_routing_by_size(self, layout):
        table = MultiSizeClusteredPageTables(layout)
        table.insert(0x5, 0x50)
        table.insert_superpage(0x100, 16, 0x400)      # fine
        table.insert_superpage(0x10000, 256, 0x10000)  # coarse (1MB)
        assert table.fine.node_count == 2
        assert table.coarse.node_count == 1

    def test_lookup_each_size(self, layout):
        table = MultiSizeClusteredPageTables(layout)
        table.insert(0x5, 0x50)
        table.insert_superpage(0x100, 16, 0x400)
        table.insert_superpage(0x10000, 256, 0x20000)
        assert table.lookup(0x5).ppn == 0x50
        assert table.lookup(0x10F).ppn == 0x40F
        assert table.lookup(0x100FF).ppn == 0x200FF
        assert table.lookup(0x100FF).npages == 256

    def test_coarse_lookup_pays_fine_miss(self, layout):
        table = MultiSizeClusteredPageTables(layout)
        table.insert_superpage(0x10000, 256, 0x20000)
        result = table.lookup(0x10010)
        assert result.cache_lines == 2  # fine miss + coarse hit

    def test_oversized_superpage_rejected(self, layout):
        table = MultiSizeClusteredPageTables(layout)
        with pytest.raises(AlignmentError):
            table.insert_superpage(0, 1024, 0)

    def test_remove_from_either_table(self, layout):
        table = MultiSizeClusteredPageTables(layout)
        table.insert(0x5, 0x50)
        table.insert_superpage(0x10000, 256, 0x20000)
        table.remove(0x5)
        table.remove(0x10010)  # demotes + removes inside coarse
        with pytest.raises(PageFaultError):
            table.lookup(0x5)
        with pytest.raises(PageFaultError):
            table.lookup(0x10010)

    def test_size_sums_tables(self, layout):
        table = MultiSizeClusteredPageTables(layout)
        table.insert(0x5, 0x50)
        table.insert_superpage(0x10000, 256, 0x20000)
        assert table.size_bytes() == (
            table.fine.size_bytes() + table.coarse.size_bytes()
        )

    def test_rejects_non_increasing_coarse_factor(self, layout):
        with pytest.raises(ConfigurationError):
            MultiSizeClusteredPageTables(layout, coarse_factor=16)

    def test_conventional_comparator_has_five_tables(self, layout):
        multi = conventional_multisize(layout)
        assert len(multi.tables) == 5
        multi.insert(0x5, 0x50)
        multi.insert_superpage(0x400, 64, 0x400)
        assert multi.lookup(0x5).ppn == 0x50
        assert multi.lookup(0x410).npages == 64


class TestSoftwareTLBBacking:
    def test_forward_mapped_backing(self, layout):
        backing = ForwardMappedPageTable(layout)
        front = SoftwareTLBTable(layout, num_sets=64, associativity=2,
                                 backing=backing)
        front.insert(0x123, 0x456)
        first = front.lookup(0x123)
        assert first.cache_lines == 1 + 7  # set probe + full tree walk
        second = front.lookup(0x123)
        assert second.cache_lines == 1     # swTLB hit

    def test_backing_layout_must_match(self, layout):
        other = AddressLayout(subblock_factor=4)
        with pytest.raises(ConfigurationError):
            SoftwareTLBTable(layout, backing=ForwardMappedPageTable(other))

    def test_insert_keeps_cache_coherent(self, layout):
        front = SoftwareTLBTable(layout, num_sets=16, associativity=1)
        front.insert(0x10, 0x1)
        front.lookup(0x10)
        front.remove(0x10)
        front.insert(0x10, 0x2)
        assert front.lookup(0x10).ppn == 0x2


class TestTraceOwners:
    def test_interleave_records_owners(self):
        a = Trace([1] * 4, name="a")
        b = Trace([2] * 4, name="b")
        merged = Trace.interleave([a, b], quantum=2)
        assert merged.segment_owners == (0, 1, 0, 1)

    def test_owner_count_validated(self):
        with pytest.raises(ConfigurationError):
            Trace([1, 2, 3], switch_points=[1], segment_owners=[0])

    def test_default_owners_single_process(self):
        trace = Trace([1, 2, 3])
        assert trace.segment_owners == (0,)
        assert list(trace.segments_with_owner())[0][0] == 0
