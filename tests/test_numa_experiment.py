"""The NUMA sweep experiment, its runner wiring, and its CLI surface."""

import pytest

from repro.experiments import numa
from repro.experiments.runner import (
    EXPERIMENT_ORDER,
    _SINGLE_STREAM_EXPERIMENTS,
    _producers,
    select_experiments,
    stream_prewarm_plan,
)

TRACE_LENGTH = 20_000


@pytest.fixture(scope="module")
def result():
    return numa.run(
        workloads=("mp3d",),
        trace_length=TRACE_LENGTH,
        miss_limit=5_000,
    )


def test_sweep_shape(result):
    # 3 tables x 4 topologies for the one workload.
    assert len(result.rows) == 12
    assert result.headers[0] == "workload/table"
    labels = {row[0] for row in result.rows}
    assert labels == {
        "mp3d/linear-1lvl", "mp3d/hashed", "mp3d/clustered",
    }
    assert sorted({row[1] for row in result.rows}) == [1, 2, 4, 8]


def test_single_node_rows_are_the_degenerate_control(result):
    for row in result.rows:
        record = dict(zip(result.headers, row))
        if record["nodes"] == 1:
            assert record["none cyc/miss"] == record["mitosis cyc/miss"]
            assert record["none cyc/miss"] == record["migrate cyc/miss"]
            assert record["none cyc/miss"] == pytest.approx(
                record["lines/miss"] * 90, abs=0.1
            )
            assert record["migrations"] == 0


def test_mitosis_beats_first_touch_on_four_nodes(result):
    """The acceptance bar: replication wins for hashed AND clustered."""
    for table in ("hashed", "clustered"):
        record = next(
            dict(zip(result.headers, row)) for row in result.rows
            if row[0] == f"mp3d/{table}" and row[1] == 4
        )
        assert record["mitosis cyc/miss"] < record["none cyc/miss"]
        assert record["mitosis local frac"] == pytest.approx(1.0)


def test_lines_per_miss_invariant_across_topologies(result):
    """The flat §6.1 column must not depend on the machine."""
    by_table = {}
    for row in result.rows:
        by_table.setdefault(row[0], set()).add(row[2])
    for table, values in by_table.items():
        assert len(values) == 1, table


def test_remote_penalty_grows_with_machine_size(result):
    """Under first-touch, more nodes ⇒ more remote walks ⇒ higher cost."""
    for table in ("linear-1lvl", "hashed", "clustered"):
        costs = [
            row[3] for row in sorted(
                (r for r in result.rows if r[0] == f"mp3d/{table}"),
                key=lambda r: r[1],
            )
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------
def test_runner_knows_the_numa_experiment():
    assert "numa" in EXPERIMENT_ORDER
    assert "numa" in _SINGLE_STREAM_EXPERIMENTS
    assert "numa" in _producers(TRACE_LENGTH)
    assert select_experiments(["numa"]) == ("numa",)
    plan = stream_prewarm_plan(("numa",), workloads=("mp3d",))
    assert ("mp3d", "single", 64) in plan


def test_cli_advertises_numa_and_topology():
    from repro.cli import EXPERIMENT_IDS, build_parser

    assert "numa" in EXPERIMENT_IDS
    parser = build_parser()
    args = parser.parse_args(
        ["experiment", "numa", "--topology", "4-node",
         "--replication", "none,mitosis"]
    )
    assert args.topology == "4-node"
    assert args.replication == "none,mitosis"
    args = parser.parse_args(["topology", "4-node"])
    assert args.name == "4-node"
    args = parser.parse_args(["topology", "--validate", "machine.json"])
    assert args.validate == "machine.json"


def test_cli_topology_subcommand_smoke(capsys):
    from repro.cli import main

    assert main(["topology"]) == 0
    out = capsys.readouterr().out
    assert "4-node" in out and "preset" in out
    assert main(["topology", "2-node"]) == 0
    out = capsys.readouterr().out
    assert "node0" in out and "150" in out


def test_cli_topology_validate_rejects_bad_file(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.json"
    bad.write_text('{"node_frames": [16], "latency": [[90, 90]]}')
    assert main(["topology", "--validate", str(bad)]) == 1
    assert "invalid topology" in capsys.readouterr().out

    from repro.numa.topology import PRESETS

    good = tmp_path / "good.json"
    good.write_text(PRESETS["2-node"].to_json())
    assert main(["topology", "--validate", str(good)]) == 0
