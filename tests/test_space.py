"""AddressSpace: mapping maintenance and the statistics experiments use."""

import pytest
from hypothesis import given, strategies as st

from repro.addr.layout import AddressLayout
from repro.addr.space import AddressSpace, Mapping, Segment
from repro.errors import AddressError, MappingExistsError, PageFaultError


class TestMappingOps:
    def test_map_and_translate(self, layout):
        space = AddressSpace(layout)
        space.map(0x100, 0x55, attrs=0x3)
        mapping = space.translate(0x100)
        assert mapping == Mapping(0x55, 0x3)

    def test_double_map_rejected(self, layout):
        space = AddressSpace(layout)
        space.map(0x100, 0x55)
        with pytest.raises(MappingExistsError):
            space.map(0x100, 0x66)

    def test_translate_unmapped_faults(self, layout):
        with pytest.raises(PageFaultError) as excinfo:
            AddressSpace(layout).translate(0x77)
        assert excinfo.value.vpn == 0x77

    def test_get_returns_none_when_unmapped(self, layout):
        assert AddressSpace(layout).get(1) is None

    def test_unmap_returns_mapping(self, layout):
        space = AddressSpace(layout)
        space.map(0x10, 0x20)
        assert space.unmap(0x10).ppn == 0x20
        assert not space.is_mapped(0x10)

    def test_unmap_unmapped_faults(self, layout):
        with pytest.raises(PageFaultError):
            AddressSpace(layout).unmap(5)

    def test_remap_replaces(self, layout):
        space = AddressSpace(layout)
        space.map(0x10, 0x20)
        space.remap(0x10, 0x30, attrs=0x1)
        assert space.translate(0x10) == Mapping(0x30, 0x1)

    def test_remap_unmapped_faults(self, layout):
        with pytest.raises(PageFaultError):
            AddressSpace(layout).remap(0x10, 0x30)

    def test_protect_changes_attrs_only(self, layout):
        space = AddressSpace(layout)
        space.map(0x10, 0x20, attrs=0x7)
        space.protect(0x10, 0x1)
        assert space.translate(0x10) == Mapping(0x20, 0x1)

    def test_map_range(self, layout):
        space = AddressSpace(layout)
        space.map_range(0x100, [5, 6, 7])
        assert [space.translate(0x100 + i).ppn for i in range(3)] == [5, 6, 7]

    def test_rejects_out_of_range_vpn(self, layout):
        with pytest.raises(AddressError):
            AddressSpace(layout).map(1 << 52, 0)

    def test_rejects_out_of_range_ppn(self, layout):
        with pytest.raises(AddressError):
            AddressSpace(layout).map(0, 1 << 28)


class TestStatistics:
    def test_len_counts_mappings(self, dense_space):
        assert len(dense_space) == 8 * 16

    def test_nactive_one_is_page_count(self, dense_space):
        assert dense_space.nactive(1) == len(dense_space)

    def test_nactive_block_granularity(self, dense_space, layout):
        assert dense_space.nactive(layout.subblock_factor) == 8

    def test_nactive_large_region(self, dense_space):
        # 8 consecutive blocks = 128 pages, inside one 512-page region.
        assert dense_space.nactive(512) == 1

    def test_nactive_rejects_zero(self, dense_space):
        with pytest.raises(AddressError):
            dense_space.nactive(0)

    def test_sparse_nactive_equals_pages(self, sparse_space, layout):
        # Isolated pages: every block holds exactly one page.
        assert sparse_space.nactive(layout.subblock_factor) == len(sparse_space)

    def test_block_population_dense(self, dense_space):
        histogram = dense_space.block_population()
        assert histogram == {16: 8}

    def test_block_population_sparse(self, sparse_space):
        assert sparse_space.block_population() == {1: len(sparse_space)}

    def test_mean_block_population(self, dense_space, sparse_space):
        assert dense_space.mean_block_population() == 16.0
        assert sparse_space.mean_block_population() == 1.0

    def test_mean_block_population_empty(self, layout):
        assert AddressSpace(layout).mean_block_population() == 0.0

    def test_density_dense(self, dense_space):
        assert dense_space.density(128) == 1.0

    def test_density_empty(self, layout):
        assert AddressSpace(layout).density() == 0.0

    def test_resident_bytes(self, dense_space, layout):
        assert dense_space.resident_bytes() == 128 * layout.page_size

    def test_vpns_sorted(self, sparse_space):
        vpns = sparse_space.vpns()
        assert vpns == sorted(vpns)


class TestSegmentsAndCopy:
    def test_segments_recorded(self, layout):
        space = AddressSpace(layout)
        seg = Segment("heap", 0x100, 64)
        space.add_segment(seg)
        assert space.segments == (seg,)
        assert 0x120 in seg and 0x140 not in seg
        assert seg.end_vpn == 0x140

    def test_copy_is_independent(self, dense_space):
        clone = dense_space.copy()
        clone.unmap(next(iter(clone)))
        assert len(clone) == len(dense_space) - 1

    def test_repr_mentions_counts(self, dense_space):
        text = repr(dense_space)
        assert "128" in text and "8" in text


@given(
    vpns=st.lists(
        st.integers(min_value=0, max_value=(1 << 30)), min_size=1,
        max_size=80, unique=True,
    ),
    region=st.sampled_from([1, 16, 512, 1 << 18]),
)
def test_nactive_matches_definition(vpns, region):
    """Nactive(P) equals the count of distinct P-aligned regions touched."""
    layout = AddressLayout()
    space = AddressSpace(layout)
    for i, vpn in enumerate(vpns):
        space.map(vpn, i)
    assert space.nactive(region) == len({vpn // region for vpn in vpns})


@given(
    data=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=1000),
        ),
        max_size=60,
    )
)
def test_map_unmap_sequence_keeps_counts(data):
    """Interleaved map/unmap never corrupts the mapping count."""
    layout = AddressLayout()
    space = AddressSpace(layout)
    reference = {}
    for vpn, ppn in data:
        if vpn in reference:
            assert space.unmap(vpn).ppn == reference.pop(vpn)
        else:
            space.map(vpn, ppn)
            reference[vpn] = ppn
    assert len(space) == len(reference)
    for vpn, ppn in reference.items():
        assert space.translate(vpn).ppn == ppn
