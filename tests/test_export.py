"""Machine-readable result export."""

import pytest

from repro.analysis.export import read_json, results_to_dict, write_csv, write_json
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult


@pytest.fixture
def results():
    return {
        "fig9": ExperimentResult(
            experiment="Figure 9",
            headers=["workload", "hashed", "clustered"],
            rows=[["coral", 1.0, 0.38], ["gcc", 1.0, 0.52]],
            notes="n",
        ),
        "table1": ExperimentResult(
            experiment="Table 1",
            headers=["workload", "misses"],
            rows=[["coral", 100], ["kernel", None]],
        ),
    }


def test_dict_roundtrip(results):
    data = results_to_dict(results)
    assert data["fig9"]["rows"][0] == ["coral", 1.0, 0.38]
    assert data["table1"]["notes"] == ""


def test_json_roundtrip(results, tmp_path):
    path = write_json(results, str(tmp_path / "out.json"))
    loaded = read_json(str(path))
    assert set(loaded) == {"fig9", "table1"}
    assert loaded["fig9"]["headers"] == ["workload", "hashed", "clustered"]
    assert loaded["table1"]["rows"][1] == ["kernel", None]


def test_csv_per_experiment(results, tmp_path):
    paths = write_csv(results, str(tmp_path / "csv"))
    assert set(paths) == {"fig9", "table1"}
    text = paths["fig9"].read_text()
    assert text.splitlines()[0] == "workload,hashed,clustered"
    assert "coral,1.0,0.38" in text
    # None renders as an empty field.
    assert "kernel," in paths["table1"].read_text()


def test_csv_rejects_file_target(results, tmp_path):
    file_path = tmp_path / "occupied"
    file_path.write_text("x")
    with pytest.raises(ConfigurationError):
        write_csv(results, str(file_path))
