"""Clustered page tables — the paper's core contribution (§3, §5)."""

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import (
    AlignmentError,
    ConfigurationError,
    MappingExistsError,
    PageFaultError,
)
from repro.mmu.cache_model import CacheModel
from repro.pagetables.pte import PTEKind


def collide_everything(tag, buckets):
    return 0


class TestBasePages:
    def test_insert_lookup(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x12345, 0x678)
        result = table.lookup(0x12345)
        assert result.ppn == 0x678
        assert result.kind is PTEKind.BASE
        assert result.npages == 1

    def test_one_node_per_block(self, layout):
        table = ClusteredPageTable(layout)
        for boff in range(16):
            table.insert(0x100 + boff, boff)
        assert table.node_count == 1

    def test_two_blocks_two_nodes(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 1)
        table.insert(0x110, 2)
        assert table.node_count == 2

    def test_duplicate_rejected(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(5, 5)
        with pytest.raises(MappingExistsError):
            table.insert(5, 6)

    def test_lookup_unmapped_slot_faults(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 1)
        with pytest.raises(PageFaultError):
            table.lookup(0x101)  # same block, empty slot

    def test_lookup_unmapped_block_faults(self, layout):
        table = ClusteredPageTable(layout)
        with pytest.raises(PageFaultError):
            table.lookup(0x500)

    def test_remove_clears_slot(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 1)
        table.insert(0x101, 2)
        table.remove(0x100)
        with pytest.raises(PageFaultError):
            table.lookup(0x100)
        assert table.lookup(0x101).ppn == 2

    def test_remove_last_slot_frees_node(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 1)
        table.remove(0x100)
        assert table.node_count == 0

    def test_remove_missing_faults(self, layout):
        with pytest.raises(PageFaultError):
            ClusteredPageTable(AddressLayout()).remove(9)

    def test_rejects_zero_buckets(self, layout):
        with pytest.raises(ConfigurationError):
            ClusteredPageTable(layout, num_buckets=0)


class TestSizeAccounting:
    def test_clustered_node_bytes(self, layout):
        # Figure 7: 16 bytes overhead + 8 per mapping slot.
        table = ClusteredPageTable(layout)
        table.insert(0, 0)
        assert table.size_bytes() == 16 + 8 * 16

    def test_superpage_node_is_24_bytes(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x200)
        assert table.size_bytes() == 24

    def test_partial_subblock_node_is_24_bytes(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_partial_subblock(0x10, 0xFF, 0x200)
        assert table.size_bytes() == 24

    def test_breakeven_vs_hashed_at_six_pages(self, layout):
        # §3: with subblock factor 16, clustered matches hashed at six
        # mappings (6 x 24 = 144 = 16 + 8 x 16).
        table = ClusteredPageTable(layout)
        for i in range(6):
            table.insert(0x100 + i, i)
        assert table.size_bytes() == 6 * 24

    def test_full_block_one_third_of_hashed(self, layout):
        table = ClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, i)
        hashed_equivalent = 16 * 24
        assert table.size_bytes() / hashed_equivalent == pytest.approx(0.375)

    def test_bucket_array_opt_in(self, layout):
        table = ClusteredPageTable(layout, num_buckets=10,
                                   count_bucket_array=True)
        assert table.size_bytes() == 10 * 24


class TestSuperpages:
    def test_block_sized_superpage(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        result = table.lookup(0x10A)
        assert result.kind is PTEKind.SUPERPAGE
        assert result.ppn == 0x40A
        assert result.base_vpn == 0x100 and result.npages == 16

    def test_small_superpage_inside_block(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x108, 8, 0x208)
        assert table.lookup(0x10C).ppn == 0x20C
        with pytest.raises(PageFaultError):
            table.lookup(0x100)  # other half of the block

    def test_two_small_superpages_same_block(self, layout):
        # §5: two 8-page superpages can share one 16-page block via two
        # nodes on the same chain.
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 8, 0x300)
        table.insert_superpage(0x108, 8, 0x500)
        assert table.lookup(0x104).ppn == 0x304
        assert table.lookup(0x10C).ppn == 0x504
        assert table.node_count == 2

    def test_superpage_plus_base_pages_same_block(self, layout):
        # §5: one 8KB superpage and base pages in one 16-page block.
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 2, 0x700)
        table.insert(0x103, 0x9)
        assert table.lookup(0x101).kind is PTEKind.SUPERPAGE
        assert table.lookup(0x103).kind is PTEKind.BASE

    def test_large_superpage_replicated_per_block(self, layout):
        # §5: a 64-page superpage replicates once per covered block (4
        # nodes), a factor of s cheaper than per-page replication.
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x400, 64, 0x800)
        assert table.node_count == 4
        assert table.size_bytes() == 4 * 24
        for probe in (0x400, 0x41F, 0x43F):
            result = table.lookup(probe)
            assert result.npages == 64
            assert result.ppn == 0x800 + (probe - 0x400)

    def test_superpage_alignment_enforced(self, layout):
        table = ClusteredPageTable(layout)
        with pytest.raises(AlignmentError):
            table.insert_superpage(0x101, 16, 0x200)
        with pytest.raises(AlignmentError):
            table.insert_superpage(0x100, 16, 0x201)

    def test_superpage_overlap_rejected(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x105, 1)
        with pytest.raises(MappingExistsError):
            table.insert_superpage(0x100, 16, 0x200)

    def test_remove_superpage(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x400, 64, 0x800)
        table.remove_superpage(0x400)
        assert table.node_count == 0

    def test_demote_superpage_to_base_pages(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        table.demote_superpage(0x100)
        assert table.lookup(0x105).kind is PTEKind.BASE
        assert table.lookup(0x105).ppn == 0x405

    def test_remove_single_page_of_superpage_demotes(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        table.remove(0x107)
        with pytest.raises(PageFaultError):
            table.lookup(0x107)
        assert table.lookup(0x106).ppn == 0x406


class TestPartialSubblocks:
    def test_round_trip(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_partial_subblock(0x20, 0b1011, 0x400)
        result = table.lookup(0x20 * 16 + 3)
        assert result.kind is PTEKind.PARTIAL_SUBBLOCK
        assert result.ppn == 0x403
        assert result.valid_mask == 0b1011

    def test_invalid_bit_faults(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_partial_subblock(0x20, 0b1011, 0x400)
        with pytest.raises(PageFaultError):
            table.lookup(0x20 * 16 + 2)

    def test_mask_width_checked(self, layout):
        table = ClusteredPageTable(layout)
        with pytest.raises(ConfigurationError):
            table.insert_partial_subblock(0x20, 1 << 16, 0x400)

    def test_empty_mask_rejected(self, layout):
        table = ClusteredPageTable(layout)
        with pytest.raises(ConfigurationError):
            table.insert_partial_subblock(0x20, 0, 0x400)

    def test_unaligned_ppn_rejected(self, layout):
        table = ClusteredPageTable(layout)
        with pytest.raises(AlignmentError):
            table.insert_partial_subblock(0x20, 1, 0x401)

    def test_psb_plus_base_pages_one_chain(self, layout):
        # The handler keeps searching after a tag match without a valid
        # mapping (§5).
        table = ClusteredPageTable(layout)
        table.insert_partial_subblock(0x20, 0b0001, 0x400)
        table.insert(0x20 * 16 + 5, 0x9)
        assert table.lookup(0x20 * 16 + 5).ppn == 0x9

    def test_remove_bit_and_free(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_partial_subblock(0x20, 0b11, 0x400)
        table.remove(0x200)
        assert table.lookup(0x201).ppn == 0x401
        table.remove(0x201)
        assert table.node_count == 0


class TestPromotionAndCoalescing:
    def test_promote_full_placed_block(self, layout):
        table = ClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        assert table.promote_block(0x10)
        assert table.lookup(0x105).kind is PTEKind.SUPERPAGE
        assert table.size_bytes() == 24

    def test_promote_requires_full_population(self, layout):
        table = ClusteredPageTable(layout)
        for i in range(15):
            table.insert(0x100 + i, 0x400 + i)
        assert not table.promote_block(0x10)

    def test_promote_requires_contiguity(self, layout):
        table = ClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + (i * 2) % 16)
        assert not table.promote_block(0x10)

    def test_promote_requires_alignment(self, layout):
        table = ClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x408 + i)  # ppn base not 16-aligned
        assert not table.promote_block(0x10)

    def test_coalesce_partial_placed_block(self, layout):
        table = ClusteredPageTable(layout)
        for i in (0, 3, 7):
            table.insert(0x100 + i, 0x400 + i)
        assert table.coalesce_block(0x10)
        result = table.lookup(0x103)
        assert result.kind is PTEKind.PARTIAL_SUBBLOCK
        assert result.valid_mask == 0b10001001
        assert table.size_bytes() == 24

    def test_coalesce_rejects_unplaced(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400)
        table.insert(0x101, 0x999)  # wrong offset: not properly placed
        assert not table.coalesce_block(0x10)

    def test_coalesce_rejects_mixed_attrs(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=0x1)
        table.insert(0x101, 0x401, attrs=0x3)
        assert not table.coalesce_block(0x10)


class TestBlockLookup:
    def test_full_block_fetch(self, layout):
        table = ClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        block = table.lookup_block(0x10)
        assert block.valid_mask == 0xFFFF
        assert [m.ppn for m in block.mappings] == list(range(0x400, 0x410))

    def test_block_fetch_single_line_at_256B(self, layout):
        # 144-byte node fits one 256-byte line: Figure 11d's clustered ~1.
        table = ClusteredPageTable(layout)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        assert table.lookup_block(0x10).cache_lines == 1

    def test_block_fetch_from_superpage(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        block = table.lookup_block(0x10)
        assert block.valid_mask == 0xFFFF

    def test_block_fetch_mixed_nodes(self, layout):
        table = ClusteredPageTable(layout)
        table.insert_superpage(0x100, 8, 0x400)
        table.insert(0x108, 0x9)
        block = table.lookup_block(0x10)
        assert block.valid_mask == 0x1FF

    def test_block_fetch_empty(self, layout):
        table = ClusteredPageTable(layout)
        block = table.lookup_block(0x99)
        assert block.valid_mask == 0
        assert table.stats.faults == 1


class TestCacheLineSpanning:
    def test_small_lines_split_tag_and_far_slot(self, layout):
        # §6.3: with 64-byte lines a subblock-16 node spans 3 lines; tag
        # in line 0 and slot 15 at byte offset 136 -> line 2.
        table = ClusteredPageTable(layout, cache=CacheModel(64))
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        assert table.lookup(0x100).cache_lines == 1  # slot 0 shares line 0
        assert table.lookup(0x10F).cache_lines == 2  # slot 15 in line 2

    def test_average_span_matches_paper_64B(self, layout):
        # Average extra lines over all 16 offsets = 10/16 = 0.625 (§6.3).
        table = ClusteredPageTable(layout, cache=CacheModel(64))
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        total = sum(table.lookup(0x100 + i).cache_lines for i in range(16))
        assert total / 16 == pytest.approx(1.625)

    def test_average_span_matches_paper_128B(self, layout):
        # 0.125 extra lines for 128-byte lines (§6.3).
        table = ClusteredPageTable(layout, cache=CacheModel(128))
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        total = sum(table.lookup(0x100 + i).cache_lines for i in range(16))
        assert total / 16 == pytest.approx(1.125)

    def test_wide_ptes_eliminate_span_penalty(self, layout):
        # §6.3's good news: superpage/partial-subblock clustered PTEs are
        # 24 bytes and never span 64-byte lines.
        table = ClusteredPageTable(layout, cache=CacheModel(64))
        table.insert_superpage(0x100, 16, 0x400)
        assert all(
            table.lookup(0x100 + i).cache_lines == 1 for i in range(16)
        )


class TestChainBehaviour:
    def test_colliding_blocks_chain(self, layout):
        table = ClusteredPageTable(layout, hash_fn=collide_everything)
        table.insert(0x100, 1)   # block 0x10
        table.insert(0x200, 2)   # block 0x20, same bucket
        assert table.lookup(0x100).probes == 1
        assert table.lookup(0x200).probes == 2

    def test_walking_past_node_costs_one_line(self, layout):
        table = ClusteredPageTable(layout, cache=CacheModel(64),
                                   hash_fn=collide_everything)
        for i in range(16):
            table.insert(0x100 + i, 0x400 + i)
        table.insert(0x200, 0x1)
        # Walking past the block-0x10 node reads only its tag: one line,
        # then the block-0x20 node's tag+slot0: one more.
        assert table.lookup(0x200).cache_lines == 2

    def test_load_factor_uses_blocks(self, layout):
        table = ClusteredPageTable(layout, num_buckets=100)
        for i in range(160):  # 10 full blocks
            table.insert(0x1000 + i, i)
        assert table.load_factor() == pytest.approx(0.1)
