"""End-to-end smoke: a warm stream cache makes the second run phase-2-only.

Runs the actual CLI (``python -m repro.experiments.runner``) twice against
one cache directory — the acceptance check that a repeat ``run_all``
performs **zero** ``collect_misses`` calls and produces byte-identical
tables.  Marked slow: the CI fast lane (``-m "not slow"``) skips it.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

#: The stable one-line cache report printed by the runner.
CACHE_LINE = re.compile(
    r"\[stream cache: hits=(\d+) computed=(\d+) stored=(\d+) errors=(\d+)"
)


def run_runner(cache_dir, jobs: int = 2) -> str:
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.experiments.runner",
        "--fast", "--jobs", str(jobs),
        "--only", "table1,fig11a,fig11d,multiprog",
        "--workloads", "mp3d,compress",
        "--cache-dir", str(cache_dir),
    ]
    proc = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def tables_only(output: str) -> str:
    """The experiment tables, without the run-dependent metrics footer."""
    return output.split("Run metrics")[0]


def test_second_run_hits_cache_and_computes_nothing(tmp_path):
    cache_dir = tmp_path / "streams"
    first = run_runner(cache_dir)
    second = run_runner(cache_dir)

    hits1, computed1, stored1, errors1 = map(
        int, CACHE_LINE.search(first).groups()
    )
    hits2, computed2, stored2, errors2 = map(
        int, CACHE_LINE.search(second).groups()
    )
    assert computed1 > 0 and stored1 == computed1 and errors1 == 0
    assert computed2 == 0, "warm cache must skip every collect_misses call"
    assert hits2 > 0 and stored2 == 0 and errors2 == 0
    assert tables_only(first) == tables_only(second)
