"""Cross-module integration: the full pipeline, end to end."""

import pytest

from repro.addr.layout import AddressLayout
from repro.analysis.metrics import STANDARD_TABLES, build_standard_tables
from repro.core.clustered import ClusteredPageTable
from repro.errors import PageFaultError
from repro.mmu.mmu import MMU
from repro.mmu.subblock_tlb import CompleteSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.promotion import DynamicPageSizePolicy
from repro.os.physmem import ReservationAllocator
from repro.os.translation_map import TranslationMap
from repro.os.vm import VirtualMemoryManager
from repro.workloads.suite import load_workload


@pytest.fixture(scope="module")
def workload():
    return load_workload("spice", trace_length=10_000)


def test_every_table_agrees_on_every_page(workload):
    """All page table organisations, built from one snapshot, translate
    every mapped page identically."""
    space = workload.union_space()
    tmap = TranslationMap.from_space(space)
    tables = build_standard_tables(tmap)
    for vpn, mapping in space.items():
        for name, table in tables.items():
            result = table.lookup(vpn)
            assert result.ppn == mapping.ppn, (name, hex(vpn))


def test_every_table_faults_identically(workload):
    space = workload.union_space()
    tmap = TranslationMap.from_space(space)
    tables = build_standard_tables(tmap)
    probe = 0xDEAD_BEEF_0
    assert not space.is_mapped(probe)
    for name, table in tables.items():
        with pytest.raises(PageFaultError):
            table.lookup(probe)


def test_wide_pte_tables_agree_with_base_tables(workload):
    """Tables storing superpage/psb PTEs resolve the same translations as
    tables storing base PTEs."""
    space = workload.union_space()
    base_map = TranslationMap.from_space(space)
    wide_map = TranslationMap.from_space(space, DynamicPageSizePolicy())
    base_table = ClusteredPageTable(workload.layout)
    wide_table = ClusteredPageTable(workload.layout)
    base_map.populate(base_table, base_pages_only=True)
    wide_map.populate(wide_table)
    for vpn, mapping in space.items():
        assert base_table.lookup(vpn).ppn == mapping.ppn
        assert wide_table.lookup(vpn).ppn == mapping.ppn
    assert wide_table.size_bytes() < base_table.size_bytes()


def test_mmu_translations_match_space(workload):
    space = workload.union_space()
    tmap = TranslationMap.from_space(space)
    table = ClusteredPageTable(workload.layout)
    tmap.populate(table)
    mmu = MMU(FullyAssociativeTLB(64), table)
    for vpn in workload.trace.vpns[:2_000].tolist():
        assert mmu.translate(int(vpn)) == space.translate(int(vpn)).ppn


def test_demand_paging_full_loop():
    """MMU + VM manager + reservation allocator: fault pages in on demand,
    promote blocks, stay consistent throughout."""
    layout = AddressLayout()
    table = ClusteredPageTable(layout)
    vm = VirtualMemoryManager(
        table, ReservationAllocator(1024, layout), auto_promote=True
    )
    mmu = MMU(SuperpageTLB(16, page_sizes=(1, 16)), table,
              fault_handler=vm.fault_in)
    for rep in range(3):
        for vpn in range(0x100, 0x140):
            ppn = mmu.translate(vpn)
            assert ppn == vm.space.translate(vpn).ppn
    assert vm.stats.promotions == 4
    assert mmu.stats.page_faults == 0x40
    assert vm.check_consistency() == 0x40


def test_complete_subblock_prefetch_against_vm():
    layout = AddressLayout()
    table = ClusteredPageTable(layout)
    vm = VirtualMemoryManager(table, ReservationAllocator(1024, layout))
    vm.map_range(0x200, 64)
    mmu = MMU(CompleteSubblockTLB(16, subblock_factor=16), table)
    for vpn in range(0x200, 0x240):
        mmu.translate(vpn)
    assert mmu.stats.tlb_misses == 4  # one block miss per page block
    assert mmu.stats.lines_per_miss == pytest.approx(1.0)


def test_workload_multiprocess_page_tables_sum(workload):
    """Per-process tables hold exactly the union of mappings."""
    gcc = load_workload("gcc", with_trace=False)
    total = 0
    for space in gcc.spaces:
        table = ClusteredPageTable(gcc.layout)
        TranslationMap.from_space(space).populate(table, base_pages_only=True)
        for vpn, mapping in space.items():
            assert table.lookup(vpn).ppn == mapping.ppn
        total += table.node_count
    union_table = ClusteredPageTable(gcc.layout)
    TranslationMap.from_space(gcc.union_space()).populate(
        union_table, base_pages_only=True
    )
    assert union_table.node_count == total  # disjoint VA slices


def test_public_api_importable():
    import repro

    for symbol in repro.__all__:
        assert getattr(repro, symbol) is not None
