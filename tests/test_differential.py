"""Differential property tests: all organisations agree on wide PTEs.

The strongest correctness statement the library can make: given one
randomly generated address-space snapshot and page-size policy outcome,
*every* page table organisation — storing the wide PTEs natively,
replicated, or split across multiple tables — produces identical
translations for every page, and identical faults for every hole.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addr.layout import AddressLayout
from repro.addr.space import AddressSpace
from repro.core.clustered import ClusteredPageTable
from repro.errors import PageFaultError
from repro.mmu.fill import build_entry
from repro.mmu.subblock_tlb import CompleteSubblockTLB, PartialSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.promotion import DynamicPageSizePolicy
from repro.os.translation_map import TranslationMap
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.linear import LinearPageTable
from repro.pagetables.memimage import MemoryImage
from repro.pagetables.strategies import MultiplePageTables

LAYOUT = AddressLayout()

# A block descriptor: (population pattern, placed?) — drawn per block.
block_strategy = st.tuples(
    st.integers(min_value=1, max_value=(1 << 16) - 1),  # occupancy mask
    st.booleans(),                                      # properly placed?
)


def build_space(blocks):
    """Materialise a snapshot from per-block (mask, placed) descriptors."""
    space = AddressSpace(LAYOUT)
    next_block_frame = 16  # keep frame 0 block free for misalignment
    for i, (mask, placed) in enumerate(blocks):
        base_vpn = (i + 1) * 64  # spread blocks out
        if placed:
            base_ppn = next_block_frame
            next_block_frame += 16
            for boff in range(16):
                if (mask >> boff) & 1:
                    space.map(base_vpn + boff, base_ppn + boff)
        else:
            for boff in range(16):
                if (mask >> boff) & 1:
                    # Deliberately misaligned frames.
                    space.map(base_vpn + boff, next_block_frame + 7)
                    next_block_frame += 16
    return space


def wide_tables(tmap):
    """Every organisation that can hold the wide PTEs, populated."""
    clustered = ClusteredPageTable(LAYOUT, num_buckets=64)
    tmap.populate(clustered)
    linear = LinearPageTable(LAYOUT)
    tmap.populate(linear)
    multi = MultiplePageTables(
        [
            HashedPageTable(LAYOUT, num_buckets=64),
            HashedPageTable(LAYOUT, num_buckets=64, grain=16),
        ]
    )
    tmap.populate(multi)
    return {"clustered": clustered, "linear": linear, "hashed-multi": multi}


@settings(max_examples=30, deadline=None)
@given(blocks=st.lists(block_strategy, min_size=1, max_size=8))
def test_all_tables_translate_identically(blocks):
    space = build_space(blocks)
    tmap = TranslationMap.from_space(space, DynamicPageSizePolicy())
    tables = wide_tables(tmap)
    probe_range = range(0, (len(blocks) + 2) * 64)
    for vpn in probe_range:
        expected = space.get(vpn)
        for name, table in tables.items():
            if expected is None:
                with pytest.raises(PageFaultError):
                    table.lookup(vpn)
            else:
                assert table.lookup(vpn).ppn == expected.ppn, (name, hex(vpn))


@settings(max_examples=25, deadline=None)
@given(blocks=st.lists(block_strategy, min_size=1, max_size=6))
def test_memory_image_matches_clustered_table(blocks):
    space = build_space(blocks)
    tmap = TranslationMap.from_space(space, DynamicPageSizePolicy())
    table = ClusteredPageTable(LAYOUT, num_buckets=32)
    tmap.populate(table)
    image = MemoryImage.of_clustered(table)
    for vpn, mapping in space.items():
        assert image.walk(vpn)[0] == mapping.ppn
    assert image.payload_bytes() == table.size_bytes()


@settings(max_examples=30, deadline=None)
@given(
    blocks=st.lists(block_strategy, min_size=1, max_size=4),
    tlb_kind=st.sampled_from(["single", "superpage", "psb", "csb"]),
)
def test_tlb_fill_always_translates_faulting_page(blocks, tlb_kind):
    """Whatever entry build_entry constructs, it must translate the page
    that missed — across every PTE format and TLB capability."""
    space = build_space(blocks)
    tmap = TranslationMap.from_space(space, DynamicPageSizePolicy())
    tlb = {
        "single": FullyAssociativeTLB(8),
        "superpage": SuperpageTLB(8, page_sizes=(1, 16)),
        "psb": PartialSubblockTLB(8, subblock_factor=16),
        "csb": CompleteSubblockTLB(8, subblock_factor=16),
    }[tlb_kind]
    for vpn, mapping in space.items():
        pte = tmap.query(vpn)
        entry = build_entry(tlb, pte, vpn, pte.ppn_for(vpn))
        assert entry.translates(vpn)
        assert entry.ppn_for(vpn) == mapping.ppn
        tlb.fill(entry)  # the TLB must also accept it
