"""Superpage strategies: replicate-PTEs and multiple page tables (§4.2)."""

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import AlignmentError, ConfigurationError, PageFaultError
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.pte import PTEKind
from repro.pagetables.strategies import MultiplePageTables, ReplicaPTE


class TestReplicaPTE:
    def test_result_resolves_offsets(self):
        replica = ReplicaPTE(
            kind=PTEKind.SUPERPAGE, base_vpn=0x100, npages=16,
            base_ppn=0x400, attrs=0x3, valid_mask=0xFFFF,
        )
        result = replica.result_for(0x105, cache_lines=2, probes=3)
        assert result.ppn == 0x405
        assert result.base_vpn == 0x100
        assert result.cache_lines == 2 and result.probes == 3


def make_multi(layout, reverse=False):
    base = HashedPageTable(layout)
    wide = HashedPageTable(layout, grain=layout.subblock_factor)
    tables = [wide, base] if reverse else [base, wide]
    return MultiplePageTables(tables), base, wide


class TestMultiplePageTables:
    def test_requires_tables(self):
        with pytest.raises(ConfigurationError):
            MultiplePageTables([])

    def test_requires_shared_layout(self, layout):
        other = AddressLayout(subblock_factor=4)
        with pytest.raises(ConfigurationError):
            MultiplePageTables(
                [HashedPageTable(layout), HashedPageTable(other)]
            )

    def test_base_routed_to_grain_one(self, layout):
        multi, base, wide = make_multi(layout)
        multi.insert(0x123, 0x456)
        assert base.node_count == 1 and wide.node_count == 0
        assert multi.lookup(0x123).ppn == 0x456

    def test_superpage_routed_to_block_table(self, layout):
        multi, base, wide = make_multi(layout)
        multi.insert_superpage(0x100, 16, 0x400)
        assert wide.node_count == 1 and base.node_count == 0

    def test_miss_in_first_table_adds_cost(self, layout):
        # §4.2: "it will make TLB miss handling slower, unless most TLB
        # misses go to one page size" — the first table's miss walk is
        # paid before the second finds the PTE.
        multi, _, _ = make_multi(layout)
        multi.insert_superpage(0x100, 16, 0x400)
        result = multi.lookup(0x105)
        assert result.ppn == 0x405
        assert result.cache_lines == 2  # empty 4KB bucket + 64KB hit

    def test_hit_in_first_table_costs_one(self, layout):
        multi, _, _ = make_multi(layout)
        multi.insert(0x123, 0x456)
        assert multi.lookup(0x123).cache_lines == 1

    def test_reversed_order_flips_costs(self, layout):
        multi, _, _ = make_multi(layout, reverse=True)
        multi.insert_superpage(0x100, 16, 0x400)
        multi.insert(0x999, 0x1)
        assert multi.lookup(0x105).cache_lines == 1   # wide table first
        assert multi.lookup(0x999).cache_lines == 2   # base pays the probe

    def test_total_miss_walks_everything(self, layout):
        multi, _, _ = make_multi(layout)
        multi.insert(0x123, 0x456)
        with pytest.raises(PageFaultError):
            multi.lookup(0x9999)
        assert multi.stats.faults == 1

    def test_partial_subblock_routed(self, layout):
        multi, _, wide = make_multi(layout)
        multi.insert_partial_subblock(0x10, 0b11, 0x400)
        assert wide.node_count == 1
        assert multi.lookup(0x101).valid_mask == 0b11

    def test_unroutable_superpage_rejected(self, layout):
        multi, _, _ = make_multi(layout)
        with pytest.raises(AlignmentError):
            multi.insert_superpage(0x100, 64, 0x400)

    def test_remove_searches_tables(self, layout):
        multi, base, wide = make_multi(layout)
        multi.insert(0x123, 0x456)
        multi.insert_superpage(0x200, 16, 0x800)
        multi.remove(0x123)
        multi.remove(0x205)
        assert base.node_count == 0 and wide.node_count == 0

    def test_remove_missing_faults(self, layout):
        multi, _, _ = make_multi(layout)
        with pytest.raises(PageFaultError):
            multi.remove(0x1)

    def test_size_sums_constituents(self, layout):
        multi, base, wide = make_multi(layout)
        multi.insert(0x123, 0x456)
        multi.insert_superpage(0x200, 16, 0x800)
        assert multi.size_bytes() == base.size_bytes() + wide.size_bytes()

    def test_block_lookup_merges_views(self, layout):
        multi, _, _ = make_multi(layout)
        multi.insert(0x100, 0x1)  # base page in block 0x10
        block = multi.lookup_block(0x10)
        assert block.valid_mask == 0b1

    def test_composes_with_clustered(self, layout):
        # The strategy composes over any PageTable, e.g. two clustered
        # tables for the §7 multi-size configuration.
        small = ClusteredPageTable(layout)
        multi = MultiplePageTables([small])
        multi.insert(0x123, 0x456)
        assert multi.lookup(0x123).ppn == 0x456
