"""Resilient execution in the experiment runner: retries, timeouts,
keep-going degradation, checkpoint/resume, and graceful interrupts."""

import multiprocessing
import time

import pytest

from repro.experiments import runner
from repro.obs.metrics import get_registry
from repro.resilience import (
    FaultPlan,
    FaultRule,
    RetryPolicy,
    RunJournal,
    task_digest,
)

TRACE_LENGTH = 2_000
WORKLOADS = ("mp3d",)


def _run(tmp_path, only, *, jobs=1, resilience=None, cache="cache"):
    return runner.run_all_with_metrics(
        TRACE_LENGTH,
        jobs=jobs,
        cache_dir=str(tmp_path / cache),
        workloads=WORKLOADS,
        only=only,
        resilience=resilience,
    )


def _renders(results):
    return {key: results[key].render(precision=3) for key in results}


class TestSerialRetry:
    def test_transient_fault_is_retried_and_recovers(self, tmp_path):
        plan = FaultPlan(
            (
                FaultRule(
                    "runner.experiment", "raise-enospc",
                    match="table1", max_attempt=1,
                ),
            )
        )
        cfg = runner.ResilienceConfig(
            retry=RetryPolicy(max_retries=2, base_delay=0.0),
            fault_plan=plan,
        )
        before = get_registry().counter(
            "runner.task_retries", experiment="table1"
        )
        results, metrics = _run(tmp_path, ["table1"], resilience=cfg)
        assert "table1" in results
        assert metrics.task_retries == 1
        assert get_registry().counter(
            "runner.task_retries", experiment="table1"
        ) == before + 1

    def test_result_after_retry_matches_fault_free_run(self, tmp_path):
        baseline, _ = _run(tmp_path, ["table1"])
        plan = FaultPlan(
            (
                FaultRule(
                    "runner.experiment", "raise-eio",
                    match="table1", max_attempt=1,
                ),
            )
        )
        cfg = runner.ResilienceConfig(
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
            fault_plan=plan,
        )
        retried, _ = _run(tmp_path, ["table1"], resilience=cfg)
        assert _renders(retried) == _renders(baseline)

    def test_budget_exhaustion_raises_original_with_history(self, tmp_path):
        plan = FaultPlan(
            (FaultRule("runner.experiment", "raise-eio", times=99),)
        )
        cfg = runner.ResilienceConfig(
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
            fault_plan=plan,
        )
        with pytest.raises(OSError) as excinfo:
            _run(tmp_path, ["table1"], resilience=cfg)
        assert len(excinfo.value.retry_history) == 2

    def test_zero_retry_config_fails_fast(self, tmp_path):
        plan = FaultPlan((FaultRule("runner.experiment", "raise-eio"),))
        cfg = runner.ResilienceConfig(fault_plan=plan)
        with pytest.raises(OSError):
            _run(tmp_path, ["table1"], resilience=cfg)

    def test_prewarm_faults_are_survivable(self, tmp_path):
        plan = FaultPlan(
            (
                FaultRule(
                    "runner.prewarm", "raise-enospc", max_attempt=1,
                ),
            )
        )
        cfg = runner.ResilienceConfig(
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
            fault_plan=plan,
        )
        results, metrics = _run(tmp_path, ["table1"], resilience=cfg)
        assert "table1" in results and metrics.task_retries == 1


class TestKeepGoing:
    def test_completes_around_the_failure_with_a_manifest(self, tmp_path):
        plan = FaultPlan(
            (
                FaultRule(
                    "runner.experiment", "raise-eio",
                    match="table1", times=99,
                ),
            )
        )
        cfg = runner.ResilienceConfig(keep_going=True, fault_plan=plan)
        results, metrics = _run(
            tmp_path, ["table1", "fig9"], resilience=cfg
        )
        assert "table1" not in results and "fig9" in results
        assert len(metrics.failures) == 1
        record = metrics.failures[0]
        assert record.key == "table1"
        assert record.stage == "experiment"
        assert record.error_type == "OSError"
        assert record.attempts == 1
        assert record.seed == plan.seed

    def test_manifest_renders(self, tmp_path):
        from repro.analysis.report import render_failure_manifest

        plan = FaultPlan(
            (FaultRule("runner.experiment", "raise-eio", times=99),)
        )
        cfg = runner.ResilienceConfig(keep_going=True, fault_plan=plan)
        _, metrics = _run(tmp_path, ["table1"], resilience=cfg)
        rendered = render_failure_manifest(metrics.failures)
        assert "table1" in rendered and "OSError" in rendered

    def test_default_run_has_no_resilience_line(self, tmp_path):
        from repro.analysis.report import render_run_metrics

        _, metrics = _run(tmp_path, ["table1"])
        assert "resilience:" not in render_run_metrics(metrics)


class TestResume:
    def test_journal_written_and_resume_skips(self, tmp_path):
        run_dir = tmp_path / "run"
        cfg = runner.ResilienceConfig(run_dir=str(run_dir))
        first, m1 = _run(tmp_path, ["table1", "fig9"], resilience=cfg)
        assert RunJournal(run_dir).completed_count() == 2
        cfg2 = runner.ResilienceConfig(run_dir=str(run_dir), resume=True)
        second, m2 = _run(tmp_path, ["table1", "fig9"], resilience=cfg2)
        assert m2.resumed_skips == 2
        assert m2.timings == []  # nothing re-ran
        assert _renders(second) == _renders(first)

    def test_resume_reruns_on_digest_mismatch(self, tmp_path):
        run_dir = tmp_path / "run"
        cfg = runner.ResilienceConfig(run_dir=str(run_dir))
        _run(tmp_path, ["table1"], resilience=cfg)
        cfg2 = runner.ResilienceConfig(run_dir=str(run_dir), resume=True)
        _, metrics = runner.run_all_with_metrics(
            3_000,  # different trace length: journal entry must not satisfy
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            workloads=WORKLOADS,
            only=["table1"],
            resilience=cfg2,
        )
        assert metrics.resumed_skips == 0
        assert len(metrics.timings) == 1

    def test_resumed_skips_reach_the_registry(self, tmp_path):
        run_dir = tmp_path / "run"
        cfg = runner.ResilienceConfig(run_dir=str(run_dir))
        _run(tmp_path, ["table1"], resilience=cfg)
        before = get_registry().counter(
            "runner.resumed_skips", experiment="table1"
        )
        cfg2 = runner.ResilienceConfig(run_dir=str(run_dir), resume=True)
        _run(tmp_path, ["table1"], resilience=cfg2)
        assert get_registry().counter(
            "runner.resumed_skips", experiment="table1"
        ) == before + 1


class TestParallelResilience:
    def test_worker_crash_is_retried_and_recovers(self, tmp_path):
        plan = FaultPlan(
            (
                FaultRule(
                    "runner.experiment", "crash",
                    match="table1", max_attempt=1,
                ),
            )
        )
        cfg = runner.ResilienceConfig(
            retry=RetryPolicy(max_retries=3, base_delay=0.0),
            fault_plan=plan,
        )
        results, metrics = _run(
            tmp_path, ["table1", "fig9"], jobs=2, resilience=cfg
        )
        assert "table1" in results and "fig9" in results
        assert metrics.task_retries >= 1

    def test_hung_worker_times_out_and_recovers(self, tmp_path):
        plan = FaultPlan(
            (
                FaultRule(
                    "runner.experiment", "hang",
                    match="table1", max_attempt=1,
                ),
            ),
            hang_seconds=60.0,
        )
        cfg = runner.ResilienceConfig(
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
            task_timeout=3.0,
            fault_plan=plan,
        )
        started = time.monotonic()
        results, metrics = _run(
            tmp_path, ["table1", "fig9"], jobs=2, resilience=cfg
        )
        assert time.monotonic() - started < 30.0  # never waits out the hang
        assert "table1" in results and "fig9" in results
        assert metrics.task_timeouts == 1
        assert get_registry().counter(
            "runner.task_timeouts", experiment="table1"
        ) >= 1

    def test_timeout_without_budget_fails_explicitly(self, tmp_path):
        plan = FaultPlan(
            (FaultRule("runner.experiment", "hang", match="table1"),),
            hang_seconds=60.0,
        )
        cfg = runner.ResilienceConfig(task_timeout=2.0, fault_plan=plan)
        with pytest.raises(runner.TaskTimeoutError):
            _run(tmp_path, ["table1"], jobs=2, resilience=cfg)

    def test_crash_without_budget_fails_fast(self, tmp_path):
        plan = FaultPlan(
            (FaultRule("runner.experiment", "crash", match="table1"),)
        )
        cfg = runner.ResilienceConfig(fault_plan=plan)
        with pytest.raises(Exception):
            _run(tmp_path, ["table1"], jobs=2, resilience=cfg)


class TestGracefulInterrupt:
    """A worker self-signals SIGINT to the parent mid-run (the regression
    shape for Ctrl-C): the pool must drain without dangling workers and
    the completed experiments must be reported and journaled."""

    def test_parallel_sigint_drains_and_reports(self, tmp_path):
        run_dir = tmp_path / "run"
        plan = FaultPlan(
            (FaultRule("runner.experiment", "sigint", match="fig11a"),)
        )
        cfg = runner.ResilienceConfig(
            run_dir=str(run_dir), fault_plan=plan
        )
        with pytest.raises(runner.RunInterrupted) as excinfo:
            _run(
                tmp_path,
                ["table1", "fig9", "fig10", "fig11a", "fig11b"],
                jobs=2,
                resilience=cfg,
            )
        interrupted = excinfo.value
        assert isinstance(interrupted, KeyboardInterrupt)
        # every reported completion is durably journaled
        state = RunJournal(run_dir).load()
        for key in interrupted.completed:
            digest = task_digest(key, TRACE_LENGTH, WORKLOADS)
            assert state.result_for(key, digest) is not None
        # the pool was shut down: no dangling worker processes
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, "dangling workers"
            time.sleep(0.05)

    def test_resume_after_interrupt_completes_the_run(self, tmp_path):
        run_dir = tmp_path / "run"
        only = ["table1", "fig9", "fig10", "fig11a", "fig11b"]
        baseline, _ = _run(tmp_path, only)
        plan = FaultPlan(
            (FaultRule("runner.experiment", "sigint", match="fig11a"),)
        )
        cfg = runner.ResilienceConfig(run_dir=str(run_dir), fault_plan=plan)
        with pytest.raises(runner.RunInterrupted):
            _run(tmp_path, only, jobs=2, resilience=cfg)
        completed_before = RunJournal(run_dir).completed_count()
        cfg2 = runner.ResilienceConfig(run_dir=str(run_dir), resume=True)
        resumed, metrics = _run(tmp_path, only, resilience=cfg2)
        assert metrics.resumed_skips == completed_before
        assert _renders(resumed) == _renders(baseline)

    def test_serial_interrupt_reports_completed(self, tmp_path):
        calls = []
        plan = FaultPlan(
            (FaultRule("runner.experiment", "sigint", match="fig9"),)
        )
        cfg = runner.ResilienceConfig(fault_plan=plan)
        with pytest.raises(runner.RunInterrupted) as excinfo:
            _run(tmp_path, ["table1", "fig9", "fig10"], resilience=cfg)
        del calls
        assert "table1" in excinfo.value.completed


class TestCliFlags:
    def test_main_rejects_negative_retries(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            runner.main(["--max-retries", "-1"])

    def test_main_rejects_conflicting_dirs(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main(
                ["--resume", str(tmp_path / "a"),
                 "--run-dir", str(tmp_path / "b")]
            )

    def test_keep_going_run_exits_nonzero_with_manifest(
        self, tmp_path, capsys
    ):
        plan = FaultPlan(
            (FaultRule("runner.experiment", "raise-eio", times=99),)
        )
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        code = runner.main(
            [
                "--trace-length", str(TRACE_LENGTH),
                "--workloads", "mp3d",
                "--only", "table1,fig9",
                "--cache-dir", str(tmp_path / "cache"),
                "--keep-going",
                "--fault-plan", str(plan_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "Failure manifest" in out
        assert "resilience:" in out
        assert "Figure 9" in out or "fig9" in out  # the rest still ran

    def test_resume_flag_skips_completed(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        args = [
            "--trace-length", str(TRACE_LENGTH),
            "--workloads", "mp3d",
            "--only", "table1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert runner.main(args + ["--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert runner.main(args + ["--resume", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 resumed" in out
