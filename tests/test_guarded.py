"""Guarded page tables: path compression, guard splits, depth claims."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError, MappingExistsError, PageFaultError
from repro.pagetables.forward import ForwardMappedPageTable
from repro.pagetables.guarded import GuardedPageTable
from repro.pagetables.pte import PTEKind


class TestConstruction:
    def test_symbol_count(self, layout):
        table = GuardedPageTable(layout, index_bits=4)
        assert table.symbols == 13  # 52 / 4

    def test_index_bits_must_divide(self, layout):
        with pytest.raises(ConfigurationError):
            GuardedPageTable(layout, index_bits=8)  # 52 % 8 != 0


class TestCompression:
    def test_single_mapping_is_depth_one(self, layout):
        table = GuardedPageTable(layout)
        table.insert(0x123456789, 0x1)
        result = table.lookup(0x123456789)
        assert result.ppn == 0x1
        assert result.cache_lines == 1  # root entry's guard swallows all

    def test_distant_vpns_split_once(self, layout):
        table = GuardedPageTable(layout)
        # Differ in the very first 4-bit symbol (bits 48-51 of the VPN):
        # both mappings stay depth 1 from the root.
        table.insert(0x1_0000_0000_0001, 0x1)
        table.insert(0x8_0000_0000_0001, 0x2)
        assert table.lookup(0x1_0000_0000_0001).cache_lines == 1
        assert table.lookup(0x8_0000_0000_0001).cache_lines == 1

    def test_deep_shared_prefix_splits_late(self, layout):
        table = GuardedPageTable(layout)
        table.insert(0x1000, 0x1)
        table.insert(0x1001, 0x2)  # shares all but the last symbol
        assert table.lookup(0x1000).cache_lines == 2
        assert table.lookup(0x1001).ppn == 0x2

    def test_sparse_space_beats_forward_mapped(self, layout):
        rng = random.Random(9)
        guarded = GuardedPageTable(layout)
        forward = ForwardMappedPageTable(layout)
        vpns = [rng.randrange(0, 1 << 50) for _ in range(200)]
        for i, vpn in enumerate(dict.fromkeys(vpns)):
            guarded.insert(vpn, i)
            forward.insert(vpn, i)
        total_guarded = sum(
            guarded.lookup(vpn).cache_lines for vpn in dict.fromkeys(vpns)
        )
        total_forward = sum(
            forward.lookup(vpn).cache_lines for vpn in dict.fromkeys(vpns)
        )
        assert total_guarded < total_forward / 1.5

    def test_depth_never_exceeds_symbols(self, layout):
        table = GuardedPageTable(layout)
        for i in range(64):
            table.insert(0x5000 + i, i)
        assert table.max_depth() <= table.symbols


class TestSemantics:
    def test_guard_mismatch_faults(self, layout):
        table = GuardedPageTable(layout)
        table.insert(0x123456789, 0x1)
        with pytest.raises(PageFaultError):
            table.lookup(0x123456788)

    def test_duplicate_rejected(self, layout):
        table = GuardedPageTable(layout)
        table.insert(0x42, 1)
        with pytest.raises(MappingExistsError):
            table.insert(0x42, 2)

    def test_remove(self, layout):
        table = GuardedPageTable(layout)
        table.insert(0x42, 1)
        table.insert(0x43, 2)
        table.remove(0x42)
        with pytest.raises(PageFaultError):
            table.lookup(0x42)
        assert table.lookup(0x43).ppn == 2

    def test_remove_missing_faults(self, layout):
        with pytest.raises(PageFaultError):
            GuardedPageTable(AddressLayout()).remove(7)

    def test_replicated_superpage(self, layout):
        table = GuardedPageTable(layout)
        table.insert_superpage(0x100, 16, 0x400)
        result = table.lookup(0x108)
        assert result.kind is PTEKind.SUPERPAGE
        assert result.ppn == 0x408

    def test_size_grows_with_nodes(self, layout):
        table = GuardedPageTable(layout)
        size_empty = table.size_bytes()
        table.insert(0x1000, 1)
        assert table.size_bytes() == size_empty  # compression: no new node
        table.insert(0x1001, 2)
        assert table.size_bytes() > size_empty   # one split


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 48) - 1),
            st.integers(min_value=0, max_value=(1 << 20)),
        ),
        max_size=50,
    )
)
def test_guarded_matches_dictionary_oracle(ops):
    """Guarded tables are faithful dictionaries under arbitrary ops."""
    layout = AddressLayout()
    table = GuardedPageTable(layout)
    oracle = {}
    for vpn, ppn in ops:
        if vpn in oracle:
            table.remove(vpn)
            del oracle[vpn]
        else:
            table.insert(vpn, ppn)
            oracle[vpn] = ppn
    for vpn, ppn in oracle.items():
        assert table.lookup(vpn).ppn == ppn
