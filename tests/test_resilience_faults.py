"""The deterministic fault-injection harness (`repro.resilience.faults`)."""

import errno
import json

import pytest

from repro.errors import ConfigurationError, PageFaultError
from repro.resilience.faults import (
    BEHAVIOUR_ACTIONS,
    EXCEPTION_ACTIONS,
    PROCESS_ACTIONS,
    SITE_ACTIONS,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    active_injector,
    active_plan_seed,
    clear_plan,
    fault_point,
    inject,
    install_plan,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


class TestRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("runner.bogus", "raise-eio")

    def test_action_must_fit_the_site(self):
        with pytest.raises(ConfigurationError):
            FaultRule("cache.store_stream", "corrupt")
        with pytest.raises(ConfigurationError):
            FaultRule("numa.replica_divergence", "crash")

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultRule("runner.experiment", "raise-eio", at=0)
        with pytest.raises(ConfigurationError):
            FaultRule("runner.experiment", "raise-eio", times=0)

    def test_every_site_has_actions(self):
        assert set(SITE_ACTIONS) == set(SITES)
        known = set(EXCEPTION_ACTIONS + PROCESS_ACTIONS + BEHAVIOUR_ACTIONS)
        for actions in SITE_ACTIONS.values():
            assert actions and set(actions) <= known


class TestPlanSerialisation:
    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule("cache.load_stream", "raise-eio", at=2, times=3),
                FaultRule(
                    "runner.experiment", "crash",
                    match="table1", max_attempt=2,
                ),
            ),
            seed=42,
            hang_seconds=1.5,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_invalid_json_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json('{"rules": [{"site": "nope"}]}')

    def test_random_plans_are_deterministic_per_seed(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert FaultPlan.random(7) != FaultPlan.random(8)

    def test_random_respects_exclusions(self):
        for seed in range(100):
            plan = FaultPlan.random(
                seed, exclude_actions=PROCESS_ACTIONS
            )
            assert all(
                rule.action not in PROCESS_ACTIONS for rule in plan.rules
            )

    def test_random_with_nothing_left_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random(
                0,
                sites=("numa.replica_divergence",),
                exclude_actions=("skip-replica",),
            )


class TestInjector:
    def test_inactive_fault_point_is_a_no_op(self):
        assert active_injector() is None
        assert fault_point("runner.experiment", key="table1") is None

    def test_fires_only_inside_the_visit_window(self):
        plan = FaultPlan(
            (FaultRule("cache.load_stream", "raise-eio", at=2, times=2),)
        )
        with inject(plan) as injector:
            assert fault_point("cache.load_stream", key="k") is None
            for _ in range(2):
                with pytest.raises(OSError) as excinfo:
                    fault_point("cache.load_stream", key="k")
                assert excinfo.value.errno == errno.EIO
            assert fault_point("cache.load_stream", key="k") is None
            assert len(injector.events) == 2

    def test_match_restricts_by_key_substring(self):
        plan = FaultPlan(
            (FaultRule("runner.experiment", "raise-enospc", match="fig11"),)
        )
        with inject(plan):
            assert fault_point("runner.experiment", key="table1") is None
            with pytest.raises(OSError) as excinfo:
                fault_point("runner.experiment", key="fig11d")
            assert excinfo.value.errno == errno.ENOSPC

    def test_max_attempt_lets_retries_outlive_the_fault(self):
        plan = FaultPlan(
            (
                FaultRule(
                    "runner.experiment", "raise-eio",
                    times=99, max_attempt=2,
                ),
            )
        )
        with inject(plan):
            for attempt in (1, 2):
                with pytest.raises(OSError):
                    fault_point(
                        "runner.experiment", key="k", attempt=attempt
                    )
            assert (
                fault_point("runner.experiment", key="k", attempt=3) is None
            )

    def test_behaviour_actions_are_returned_not_raised(self):
        plan = FaultPlan(
            (FaultRule("numa.replica_divergence", "skip-replica"),)
        )
        with inject(plan):
            assert (
                fault_point("numa.replica_divergence") == "skip-replica"
            )

    def test_inject_restores_the_previous_injector(self):
        outer = install_plan(
            FaultPlan((FaultRule("cache.load_stream", "raise-eio"),))
        )
        with inject(FaultPlan((), seed=5)):
            assert active_plan_seed() == 5
        assert active_injector() is outer
        clear_plan()
        assert active_plan_seed() is None

    def test_events_are_recorded_and_exported(self, tmp_path):
        plan = FaultPlan(
            (FaultRule("cache.store_stream", "raise-enospc"),), seed=9
        )
        with inject(plan) as injector:
            with pytest.raises(OSError):
                fault_point("cache.store_stream", key="artefact.npz")
            path = injector.export_jsonl(tmp_path / "faults.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])["fault_header"]
        assert header["seed"] == 9 and header["fired"] == 1
        event = json.loads(lines[1])
        assert event["site"] == "cache.store_stream"
        assert event["action"] == "raise-enospc"
        assert event["key"] == "artefact.npz"

    def test_counts_into_the_metrics_registry(self):
        from repro.obs.metrics import get_registry

        before = get_registry().counter(
            "faults.injected",
            site="runner.experiment", action="raise-eio",
        )
        plan = FaultPlan((FaultRule("runner.experiment", "raise-eio"),))
        with inject(plan):
            with pytest.raises(OSError):
                fault_point("runner.experiment", key="k")
        after = get_registry().counter(
            "faults.injected",
            site="runner.experiment", action="raise-eio",
        )
        assert after == before + 1


class TestCorruption:
    def test_corrupt_action_flips_one_byte(self, tmp_path):
        target = tmp_path / "artefact.bin"
        original = bytes(range(64))
        target.write_bytes(original)
        plan = FaultPlan(
            (FaultRule("cache.artifact_stored", "corrupt"),), seed=10
        )
        with inject(plan):
            fault_point("cache.artifact_stored", key=str(target), path=target)
        damaged = target.read_bytes()
        assert len(damaged) == len(original)
        diffs = [i for i in range(len(original)) if damaged[i] != original[i]]
        assert diffs == [10]  # seed picks the offset deterministically

    def test_corrupted_cache_artefact_is_evicted_not_believed(self, tmp_path):
        """End to end: bit rot after store → detected, evicted, recomputed."""
        from repro.cache.stream_cache import StreamCache, stream_cache_key
        from repro.mmu.simulate import collect_misses
        from repro.mmu.tlb import FullyAssociativeTLB
        from repro.os.translation_map import TranslationMap
        from repro.workloads.suite import load_workload

        workload = load_workload("mp3d", trace_length=2_000)
        tmap = TranslationMap.from_space(workload.union_space())
        stream = collect_misses(
            workload.trace, FullyAssociativeTLB(64), tmap
        )
        key = stream_cache_key(workload.trace, FullyAssociativeTLB(64), tmap)
        cache = StreamCache(tmp_path / "cache")
        plan = FaultPlan(
            (FaultRule("cache.artifact_stored", "corrupt"),), seed=1000
        )
        with inject(plan):
            cache.put(key, stream)  # artefact corrupted as it lands
        assert cache.get(key) is None  # detected and evicted, not trusted
        assert cache.stats.errors == 1
        cache.put(key, stream)  # plan expired: clean store
        recovered = cache.get(key)
        assert recovered is not None
        assert recovered.misses == stream.misses


class TestReplicaDivergence:
    def test_skip_replica_creates_divergence_coherent_catches(self):
        from repro.numa.replication import ReplicatedPageTable
        from repro.numa.topology import get_topology
        from repro.pagetables.hashed import HashedPageTable

        table = ReplicatedPageTable(
            lambda: HashedPageTable(), get_topology("2-node")
        )
        table.insert(0x10, 0x90)
        assert table.coherent(0x10)
        plan = FaultPlan(
            (FaultRule("numa.replica_divergence", "skip-replica"),)
        )
        with inject(plan):
            table.insert(0x20, 0x91)  # node 0's update is dropped
        assert not table.coherent(0x20)  # divergence is *detected*
        assert table.coherent(0x10)
        # replica 1 has the mapping, replica 0 faults
        assert table.replica(1).lookup(0x20).ppn == 0x91
        with pytest.raises(PageFaultError):
            table.replica(0).lookup(0x20)

    def test_fan_out_still_charged_for_the_lost_write(self):
        from repro.numa.replication import ReplicatedPageTable
        from repro.numa.topology import get_topology
        from repro.pagetables.hashed import HashedPageTable

        table = ReplicatedPageTable(
            lambda: HashedPageTable(), get_topology("2-node")
        )
        plan = FaultPlan(
            (FaultRule("numa.replica_divergence", "skip-replica"),)
        )
        with inject(plan):
            table.insert(0x20, 0x91)
        assert table.stats.updates == 1
        assert table.stats.replica_writes == 2  # issued, then lost


class TestRingOverflow:
    def test_overflow_action_forces_a_ring_drop(self):
        from repro.obs.trace import WalkTracer

        tracer = WalkTracer(capacity=1_000)
        plan = FaultPlan((FaultRule("trace.ring_overflow", "overflow", at=2),))
        with inject(plan):
            for seq in range(3):
                tracer.record(
                    "hashed", "walk", seq, "pte", 1, 1, False, 0
                )
        assert tracer.recorded == 3
        assert tracer.dropped == 1  # forced despite spare capacity
        assert len(tracer) == 2
        # totals live outside the ring: they still cover all 3 events
        assert tracer.total_lines == 3
        assert tracer.events()[0].vpn == 1  # the oldest (vpn 0) was dropped
