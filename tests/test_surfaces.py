"""Breadth smoke tests: describe()/repr strings and the error hierarchy.

These catch the small regressions that break reports and CLI output —
format strings referencing renamed attributes, errors losing their base
classes — without asserting exact wording.
"""

import pytest

from repro import errors
from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.core.multisize import MultiSizeClusteredPageTables
from repro.core.variable import VariableClusteredPageTable
from repro.mmu.asid import ASIDTaggedTLB
from repro.mmu.cache_sim import CacheSim
from repro.mmu.mmu import MMU
from repro.mmu.subblock_tlb import CompleteSubblockTLB, PartialSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB, SetAssociativeTLB
from repro.os.paging import ClockPager
from repro.os.shootdown import SMPSystem
from repro.pagetables.forward import ForwardMappedPageTable
from repro.pagetables.guarded import GuardedPageTable
from repro.pagetables.hashed import HashedPageTable, SuperpageIndexHashedPageTable
from repro.pagetables.inverted import FrameInvertedPageTable, InvertedPageTable
from repro.pagetables.linear import LinearPageTable
from repro.pagetables.powerpc import PowerPCPageTable
from repro.pagetables.software_tlb import SoftwareTLBTable
from repro.pagetables.strategies import MultiplePageTables

LAYOUT = AddressLayout()

ALL_TABLES = [
    ClusteredPageTable(LAYOUT),
    VariableClusteredPageTable(LAYOUT),
    MultiSizeClusteredPageTables(LAYOUT),
    HashedPageTable(LAYOUT),
    HashedPageTable(LAYOUT, grain=16, packed=True),
    SuperpageIndexHashedPageTable(LAYOUT),
    InvertedPageTable(LAYOUT),
    FrameInvertedPageTable(LAYOUT, total_frames=256, num_anchors=16),
    PowerPCPageTable(LAYOUT, num_groups=64),
    LinearPageTable(LAYOUT, structure="multilevel"),
    LinearPageTable(LAYOUT, structure="ideal"),
    LinearPageTable(LAYOUT, structure="hashed"),
    ForwardMappedPageTable(LAYOUT),
    GuardedPageTable(LAYOUT),
    SoftwareTLBTable(LAYOUT, num_sets=16),
    MultiplePageTables([HashedPageTable(LAYOUT)]),
]

ALL_TLBS = [
    FullyAssociativeTLB(8),
    SetAssociativeTLB(4, 2),
    SuperpageTLB(8),
    PartialSubblockTLB(8),
    CompleteSubblockTLB(8),
    ASIDTaggedTLB(FullyAssociativeTLB(8)),
]


@pytest.mark.parametrize("table", ALL_TABLES,
                         ids=lambda t: type(t).__name__ + "/" + t.name)
def test_table_describe_and_repr(table):
    text = table.describe()
    assert isinstance(text, str) and text
    assert table.name.split("-")[0] in text or table.name in text
    assert type(table).__name__ in repr(table) or text in repr(table)


@pytest.mark.parametrize("tlb", ALL_TLBS, ids=lambda t: t.name)
def test_tlb_describe(tlb):
    text = tlb.describe()
    assert isinstance(text, str) and text


def test_composite_describes():
    table = ClusteredPageTable(LAYOUT)
    assert "MMU[" in MMU(FullyAssociativeTLB(8), table).describe()
    assert "SMP" in SMPSystem(table, lambda: FullyAssociativeTLB(8)).describe()
    assert "clock pager" in ClockPager(
        ClusteredPageTable(LAYOUT), FullyAssociativeTLB(8), frames=64
    ).describe()
    assert "KB" in CacheSim().describe()


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ConfigurationError", "AddressError", "PageFaultError",
            "MappingExistsError", "AlignmentError", "OutOfMemoryError",
            "EncodingError", "ProtectionFaultError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError), name

    def test_value_error_compatibility(self):
        # Address and encoding problems are also ValueErrors, so generic
        # validation code can catch them idiomatically.
        assert issubclass(errors.AddressError, ValueError)
        assert issubclass(errors.AlignmentError, ValueError)
        assert issubclass(errors.EncodingError, ValueError)

    def test_page_fault_carries_vpn(self):
        error = errors.PageFaultError(0x123)
        assert error.vpn == 0x123
        assert "0x123" in str(error)

    def test_protection_fault_carries_details(self):
        error = errors.ProtectionFaultError(0x55, write=True)
        assert error.vpn == 0x55 and error.write
        assert "write" in str(error)

    def test_one_except_clause_catches_all(self):
        caught = []
        for factory in (
            lambda: ClusteredPageTable(LAYOUT).lookup(1),
            lambda: AddressLayout(subblock_factor=3),
            lambda: FullyAssociativeTLB(0),
        ):
            try:
                factory()
            except errors.ReproError as error:
                caught.append(type(error).__name__)
        assert len(caught) == 3
