"""Tenancy subsystem: units, the 1-tenant differential, determinism.

The two load-bearing guarantees:

- **Differential** — a 1-tenant, no-churn tenancy run is exactly a
  single-process ``replay()`` of the same miss stream: identical replay
  sums, identical table walk stats, identical attached
  registry/profile aggregates.  The scheduler machinery (slot slicing,
  TLB seeding, arena bookkeeping) must add zero walk cost.
- **Determinism** — ``benchmarks/bench_tenancy.py`` produces the same
  document for the same seed at any ``--jobs``, so the CI artifact can
  be diffed across runs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.metrics import make_table
from repro.experiments import tenancy
from repro.experiments.common import configure_engine, replay
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profile import WalkProfile
from repro.obs.trace import WalkTracer, install_tracer, uninstall_tracer
from repro.os.physmem import FrameAllocator
from repro.tenancy import ChurnSchedule, SharedArena, Tenant
from repro.tenancy.tenant import build_tenant_streams


# ---------------------------------------------------------------------------
# Tenants
# ---------------------------------------------------------------------------
class TestTenant:
    def test_footprint_is_deterministic(self):
        a = Tenant(7, seed=3, footprint=32)
        b = Tenant(7, seed=3, footprint=32)
        assert np.array_equal(a.vpns, b.vpns)
        assert a.asid == b.asid == 8

    def test_regions_are_disjoint(self):
        tenants = [Tenant(tid, seed=1, footprint=64) for tid in range(20)]
        seen = set()
        for tenant in tenants:
            pages = set(tenant.vpns.tolist())
            assert len(pages) == 64
            assert not (pages & seen)
            seen |= pages

    def test_streams_draw_from_own_footprint(self):
        tenants = [Tenant(tid, seed=5, footprint=16) for tid in range(3)]
        streams = build_tenant_streams(tenants, 200, seed=5)
        for tenant in tenants:
            stream = streams[tenant.tenant_id]
            assert stream.misses == 200
            assert set(stream.vpns.tolist()) <= set(tenant.vpns.tolist())

    def test_streams_are_deterministic(self):
        tenants = [Tenant(tid, seed=9, footprint=16) for tid in range(2)]
        first = build_tenant_streams(tenants, 100, seed=9)
        second = build_tenant_streams(tenants, 100, seed=9)
        for tid in (0, 1):
            assert np.array_equal(first[tid].vpns, second[tid].vpns)


# ---------------------------------------------------------------------------
# Churn schedules
# ---------------------------------------------------------------------------
class TestChurnSchedule:
    def test_static_schedule_never_churns(self):
        schedule = ChurnSchedule(10, 4, churn_fraction=0.0, seed=1)
        assert schedule.arrivals[0] == tuple(range(10))
        assert all(not d for d in schedule.departures)
        assert all(not a for a in schedule.arrivals[1:])
        assert schedule.total_tenants == 10

    def test_population_is_constant_and_ids_fresh(self):
        schedule = ChurnSchedule(10, 6, churn_fraction=0.2, seed=3)
        active = set()
        ever = set()
        for slot in range(6):
            departing = set(schedule.departures[slot])
            assert departing <= active
            active -= departing
            arriving = set(schedule.arrivals[slot])
            assert not (arriving & ever), "tenant ids must never recycle"
            active |= arriving
            ever |= arriving
            assert len(active) == 10
        assert schedule.total_tenants == 10 + 5 * 2

    def test_same_seed_same_schedule(self):
        a = ChurnSchedule(30, 8, churn_fraction=0.1, seed=7)
        b = ChurnSchedule(30, 8, churn_fraction=0.1, seed=7)
        assert a.departures == b.departures
        assert a.arrivals == b.arrivals

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ChurnSchedule(0, 4)
        with pytest.raises(ValueError):
            ChurnSchedule(4, 0)
        with pytest.raises(ValueError):
            ChurnSchedule(4, 4, churn_fraction=1.0)


# ---------------------------------------------------------------------------
# The shared arena
# ---------------------------------------------------------------------------
def _arena(frames: int, watermark: float = 0.9):
    table = make_table("hashed", num_buckets=256)
    allocator = FrameAllocator(frames)
    return SharedArena(table, allocator, watermark=watermark), table, allocator


class TestSharedArena:
    def test_admit_and_depart_accounting(self):
        arena, table, allocator = _arena(256)
        a, b = Tenant(0, seed=2, footprint=16), Tenant(1, seed=2, footprint=16)
        assert arena.admit(a) == 16
        assert arena.admit(b) == 16
        assert arena.resident_pages(0) == 16
        assert allocator.allocated_frames() == 32
        assert arena.stats.pte_inserts == 32
        assert arena.stats.bytes_created > 0
        assert arena.depart(0) == 16
        assert arena.resident_pages(0) == 0
        assert allocator.allocated_frames() == 16
        assert arena.stats.pte_removes == 16
        with pytest.raises(ValueError):
            arena.depart(0)
        with pytest.raises(ValueError):
            arena.admit(b)

    def test_pressure_reclaims_largest_victim_and_refaults(self):
        # 3 x 16 pages into 40 frames: the third admission crosses the
        # 0.8 watermark and must reclaim from an earlier tenant.
        arena, table, allocator = _arena(40, watermark=0.8)
        evictions = []
        arena.on_evict = lambda tid, vpns: evictions.append((tid, len(vpns)))
        tenants = [Tenant(tid, seed=4, footprint=16) for tid in range(3)]
        for tenant in tenants:
            arena.admit(tenant)
        assert arena.stats.reclaims > 0
        assert evictions and all(tid != 2 for tid, _ in evictions), (
            "the tenant being admitted is protected from its own reclaim"
        )
        victim = evictions[0][0]
        parked = arena.evicted_for(victim)
        assert parked and parked == set(
            sorted(Tenant(victim, seed=4, footprint=16).vpns.tolist())[-len(parked):]
        ), "reclaim takes the upper-address half of the victim"
        refaulted = arena.refault(victim, list(parked)[:3])
        assert refaulted == len(set(list(parked)[:3]))
        assert arena.stats.refaulted_ptes == refaulted

    def test_reclaim_on_empty_arena_is_a_noop(self):
        arena, _, _ = _arena(8)
        assert arena.reclaim() == 0


# ---------------------------------------------------------------------------
# The 1-tenant differential
# ---------------------------------------------------------------------------
def _traced(fn):
    """Run ``fn`` under a fresh tracer+registry+profile; return all three."""
    registry = MetricsRegistry()
    profile = WalkProfile()
    tracer = WalkTracer(
        capacity=100_000, registry=registry, profile=profile
    )
    install_tracer(tracer)
    try:
        value = fn()
    finally:
        uninstall_tracer(tracer)
    return value, tracer, profile


class TestOneTenantDifferential:
    TRACE_LENGTH = 4_000

    def test_equals_single_process_replay(self):
        pop_before = get_registry().histogram_handle(
            "tenancy.walk_cycles", table="hashed", tenants=1, churn="static"
        ).count
        (result, scheduler), tenancy_tracer, tenancy_profile = _traced(
            lambda: tenancy.run_config(
                "hashed", 1, 0.0, trace_length=self.TRACE_LENGTH
            )
        )
        # No churn, slack headroom: the lifecycle machinery must be idle.
        assert result.faults == 0
        assert result.refault_misses == 0
        assert result.reclaims == 0
        assert result.arrivals == 1 and result.departures == 0

        # Reference: the identical stream replayed in one piece against
        # an identically built and populated table.
        tenant = scheduler.tenants[0]
        stream = scheduler.streams[0]
        assert stream.misses == result.misses
        table = make_table(
            "hashed",
            num_buckets=tenancy.arena_buckets(tenancy.FOOTPRINT),
        )
        allocator = FrameAllocator(scheduler.arena.allocator.total_frames)
        frames = {
            vpn: allocator.allocate(vpn) for vpn in tenant.vpns.tolist()
        }
        table.insert_many(sorted(frames.items()))
        (replayed, _), ref_tracer, ref_profile = _traced(
            lambda: (replay(stream, table), None)
        )

        # Replay sums.
        assert replayed.misses == result.misses
        assert replayed.cache_lines == result.cache_lines
        assert replayed.probes == result.probes
        assert replayed.faults == result.faults

        # Table walk stats, field by field.
        assert scheduler.table.stats == table.stats

        # Tracer aggregates and the attached walk profile.
        assert tenancy_tracer.replay_lines == ref_tracer.replay_lines
        assert tenancy_tracer.total_probes == ref_tracer.total_probes
        assert tenancy_tracer.faults == ref_tracer.faults
        assert tenancy_profile.as_dict() == ref_profile.as_dict()

        # The process-wide registry saw every miss exactly once.
        pop_after = get_registry().histogram_handle(
            "tenancy.walk_cycles", table="hashed", tenants=1, churn="static"
        ).count
        assert pop_after - pop_before == result.misses
        assert result.population.count == result.misses


# ---------------------------------------------------------------------------
# Engine parity and sweep determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_scalar_and_batch_rows_match(self):
        rows = {}
        for engine in ("scalar", "batch"):
            configure_engine(engine)
            try:
                result, _ = tenancy.run_config(
                    "clustered", 10, 0.1, trace_length=2_000
                )
            finally:
                configure_engine("scalar")
            rows[engine] = tenancy.config_row("clustered", 10, 0.1, result)
        assert rows["scalar"] == rows["batch"]

    def test_run_is_repeatable(self):
        kwargs = dict(
            trace_length=2_000, tenants=(8,), tables=("hashed",),
            churn_modes=(0.1,),
        )
        assert tenancy.run(**kwargs).rows == tenancy.run(**kwargs).rows

    def test_bench_document_is_jobs_invariant(self):
        bench = pytest.importorskip(
            "benchmarks.bench_tenancy",
            reason="benchmarks/ requires the repository root on sys.path",
        )
        docs = {
            jobs: bench.collect(trace_length=3_000, tenants=(20,), jobs=jobs)
            for jobs in (1, 4)
        }
        assert json.dumps(docs[1], sort_keys=True) == json.dumps(
            docs[4], sort_keys=True
        )
        assert len(docs[1]["rows"]) == len(
            tenancy.DEFAULT_TABLES
        ) * len(tenancy.DEFAULT_CHURN)

    def test_bench_resume_reuses_journal(self, tmp_path):
        bench = pytest.importorskip(
            "benchmarks.bench_tenancy",
            reason="benchmarks/ requires the repository root on sys.path",
        )
        run_dir = tmp_path / "bench-run"
        fresh = bench.collect(
            trace_length=3_000, tenants=(6,), run_dir=str(run_dir)
        )
        resumed = bench.collect(
            trace_length=3_000, tenants=(6,), run_dir=str(run_dir),
            resume=True,
        )
        assert fresh == resumed
