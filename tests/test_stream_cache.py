"""The persistent miss-stream cache: round trips, corruption, invalidation."""

import errno
import json
import zipfile
from collections import Counter

import numpy as np
import pytest

from repro.cache import stream_cache as sc
from repro.cache.stream_cache import (
    SCHEMA_VERSION,
    CacheStats,
    StreamCache,
    StreamCacheError,
    load_stream,
    save_stream,
    stream_cache_key,
)
from repro.mmu.simulate import MissStream, collect_misses
from repro.mmu.subblock_tlb import CompleteSubblockTLB
from repro.mmu.tlb import FullyAssociativeTLB, SetAssociativeTLB
from repro.os.translation_map import TranslationMap
from repro.pagetables.pte import PTEKind
from repro.workloads.suite import load_workload


def synthetic_stream(misses: int = 32) -> MissStream:
    """A hand-built stream exercising every serialised field."""
    rng = np.random.default_rng(7)
    return MissStream(
        trace_name="synthetic",
        tlb_description="fa-tlb (64 entries)",
        vpns=rng.integers(0, 1 << 40, size=misses, dtype=np.int64),
        block_miss=rng.integers(0, 2, size=misses).astype(bool),
        accesses=10 * misses,
        misses=misses,
        tlb_block_misses=misses - 5,
        tlb_subblock_misses=5,
        misses_by_kind=Counter(
            {PTEKind.BASE: misses - 7, PTEKind.SUPERPAGE: 4,
             PTEKind.PARTIAL_SUBBLOCK: 3}
        ),
    )


def assert_streams_equal(a: MissStream, b: MissStream) -> None:
    assert np.array_equal(a.vpns, b.vpns)
    assert a.vpns.dtype == b.vpns.dtype
    assert np.array_equal(a.block_miss, b.block_miss)
    assert a.trace_name == b.trace_name
    assert a.tlb_description == b.tlb_description
    assert a.accesses == b.accesses
    assert a.misses == b.misses
    assert a.tlb_block_misses == b.tlb_block_misses
    assert a.tlb_subblock_misses == b.tlb_subblock_misses
    assert a.misses_by_kind == b.misses_by_kind
    assert all(
        isinstance(kind, PTEKind) for kind in b.misses_by_kind
    )


class TestRoundTrip:
    def test_save_load_preserves_every_field(self, tmp_path):
        stream = synthetic_stream()
        path = save_stream(stream, tmp_path / "s.npz")
        assert_streams_equal(stream, load_stream(path))

    def test_real_collect_misses_round_trip(self, tmp_path):
        workload = load_workload("mp3d", trace_length=4_000)
        tmap = TranslationMap.from_space(workload.union_space())
        stream = collect_misses(workload.trace, FullyAssociativeTLB(32), tmap)
        path = save_stream(stream, tmp_path / "real.npz")
        assert_streams_equal(stream, load_stream(path))

    def test_empty_stream_round_trip(self, tmp_path):
        stream = MissStream(
            trace_name="empty", tlb_description="fa",
            vpns=np.empty(0, dtype=np.int64),
            block_miss=np.empty(0, dtype=bool),
            accesses=0, misses=0, tlb_block_misses=0, tlb_subblock_misses=0,
        )
        path = save_stream(stream, tmp_path / "empty.npz")
        loaded = load_stream(path)
        assert loaded.misses == 0 and len(loaded.vpns) == 0
        assert loaded.miss_ratio == 0.0

    def test_cache_get_put(self, tmp_path):
        cache = StreamCache(tmp_path)
        stream = synthetic_stream()
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, stream)
        assert_streams_equal(stream, cache.get("ab" * 32))
        assert cache.stats == CacheStats(hits=1, misses=1, stores=1, errors=0)
        assert len(cache) == 1


class TestCorruption:
    def _stored(self, tmp_path):
        cache = StreamCache(tmp_path)
        key = "cd" * 32
        cache.put(key, synthetic_stream())
        return cache, key, cache.path_for(key)

    def test_truncated_file_falls_back_to_miss(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get(key) is None
        assert cache.stats.errors == 1
        assert not path.exists()  # damaged artefact evicted

    def test_garbage_file_falls_back_to_miss(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        path.write_bytes(b"\x00" * 128)
        assert cache.get(key) is None
        assert cache.stats.errors == 1

    def test_missing_array_is_rejected(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, vpns=np.arange(4, dtype=np.int64))
        with pytest.raises(StreamCacheError, match="lacks array"):
            load_stream(path)

    def test_shape_mismatch_is_rejected(self, tmp_path):
        stream = synthetic_stream()
        stream.block_miss = stream.block_miss[:-3]
        path = save_stream(stream, tmp_path / "bad.npz")
        with pytest.raises(StreamCacheError, match="shape mismatch"):
            load_stream(path)

    def test_miss_count_mismatch_is_rejected(self, tmp_path):
        stream = synthetic_stream()
        stream.misses += 1
        path = save_stream(stream, tmp_path / "bad.npz")
        with pytest.raises(StreamCacheError, match="misses"):
            load_stream(path)

    def test_stale_schema_is_invalidated(self, tmp_path, monkeypatch):
        stream = synthetic_stream()
        monkeypatch.setattr(sc, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        path = save_stream(stream, tmp_path / "future.npz")
        monkeypatch.undo()
        with pytest.raises(StreamCacheError, match="schema"):
            load_stream(path)
        # Through the cache: a miss, not a crash; the artefact is evicted.
        cache = StreamCache(tmp_path)
        key = "ef" * 32
        monkeypatch.setattr(sc, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        cache.put(key, stream)
        monkeypatch.undo()
        assert cache.get(key) is None
        assert cache.stats.errors == 1
        assert not cache.path_for(key).exists()

    def test_artefact_is_a_real_npz(self, tmp_path):
        path = save_stream(synthetic_stream(), tmp_path / "s.npz")
        assert zipfile.is_zipfile(path)
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"].tobytes()).decode())
        assert meta["schema"] == SCHEMA_VERSION


class TestEnvironmentErrorsPropagate:
    """Regression: ``load_stream`` used to catch bare ``Exception``, so a
    permissions problem, a full disk, or memory exhaustion read as a cache
    miss and triggered silent recomputation forever."""

    def _stored(self, tmp_path):
        cache = StreamCache(tmp_path)
        key = "ee" * 32
        cache.put(key, synthetic_stream())
        return cache, key, cache.path_for(key)

    @pytest.mark.parametrize(
        "raised, expected",
        [
            (PermissionError(errno.EACCES, "denied"), PermissionError),
            (OSError(errno.ENOSPC, "no space"), OSError),
            (OSError(errno.EIO, "bad sector"), OSError),
            (MemoryError("oom"), MemoryError),
        ],
    )
    def test_load_stream_propagates(self, tmp_path, monkeypatch,
                                    raised, expected):
        cache, key, path = self._stored(tmp_path)

        def exploding_load(*args, **kwargs):
            raise raised

        monkeypatch.setattr(sc.np, "load", exploding_load)
        with pytest.raises(expected):
            load_stream(path)
        # Through the cache too: no silent miss, artefact left in place.
        with pytest.raises(expected):
            cache.get(key)
        assert path.exists()

    def test_plain_oserror_from_npload_is_still_corruption(self, tmp_path):
        # np.load raises errno-less OSError for non-archive bytes; that is
        # a damaged artefact, not an environment problem.
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an archive at all")
        with pytest.raises(StreamCacheError):
            load_stream(path)

    def test_corruption_reasons_are_stable_slugs(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        path.write_bytes(b"\x00" * 64)
        try:
            load_stream(path)
        except StreamCacheError as exc:
            assert exc.reason == "unreadable"
        else:
            pytest.fail("expected StreamCacheError")
        stream = synthetic_stream()
        stream.misses += 1
        bad = save_stream(stream, tmp_path / "counts.npz")
        with pytest.raises(StreamCacheError) as excinfo:
            load_stream(bad)
        assert excinfo.value.reason == "count-mismatch"


class TestRegistryAccounting:
    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        from repro.obs.metrics import reset_registry

        reset_registry()
        yield
        reset_registry()

    def test_hit_miss_store_counters(self, tmp_path):
        from repro.obs.metrics import get_registry

        cache = StreamCache(tmp_path)
        key = "aa" * 32
        assert cache.get(key) is None
        cache.put(key, synthetic_stream())
        assert cache.get(key) is not None
        registry = get_registry()
        assert registry.counter("stream_cache.misses") == 1
        assert registry.counter("stream_cache.stores") == 1
        assert registry.counter("stream_cache.hits") == 1

    def test_evictions_are_counted_by_reason(self, tmp_path, monkeypatch):
        from repro.obs.metrics import get_registry

        cache = StreamCache(tmp_path)
        key = "bb" * 32
        cache.put(key, synthetic_stream())
        cache.path_for(key).write_bytes(b"\x00" * 64)
        assert cache.get(key) is None  # evicted
        monkeypatch.setattr(sc, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        cache.put(key, synthetic_stream())
        monkeypatch.undo()
        assert cache.get(key) is None  # schema eviction
        registry = get_registry()
        assert registry.counter(
            "stream_cache.evictions", reason="unreadable"
        ) == 1
        assert registry.counter(
            "stream_cache.evictions", reason="schema"
        ) == 1
        assert registry.counter("stream_cache.errors") == 2


class TestKeys:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = load_workload("mp3d", trace_length=3_000)
        tmap = TranslationMap.from_space(workload.union_space())
        return workload, tmap

    def test_key_is_stable_across_instances(self, setup):
        workload, tmap = setup
        a = stream_cache_key(workload.trace, FullyAssociativeTLB(64), tmap)
        b = stream_cache_key(workload.trace, FullyAssociativeTLB(64), tmap)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_key_distinguishes_tlb_configs(self, setup):
        workload, tmap = setup
        keys = {
            stream_cache_key(workload.trace, tlb, tmap)
            for tlb in (
                FullyAssociativeTLB(64),
                FullyAssociativeTLB(56),
                SetAssociativeTLB(num_sets=16, ways=4),
                CompleteSubblockTLB(64, subblock_factor=16),
            )
        }
        assert len(keys) == 4

    def test_key_distinguishes_prefetch_flag(self, setup):
        workload, tmap = setup
        tlb = CompleteSubblockTLB(64)
        assert stream_cache_key(
            workload.trace, tlb, tmap, prefetch_subblocks=True
        ) != stream_cache_key(
            workload.trace, tlb, tmap, prefetch_subblocks=False
        )

    def test_key_distinguishes_trace_and_map(self, setup):
        workload, tmap = setup
        other = load_workload("compress", trace_length=3_000)
        other_map = TranslationMap.from_space(other.union_space())
        tlb = FullyAssociativeTLB(64)
        base = stream_cache_key(workload.trace, tlb, tmap)
        assert stream_cache_key(other.trace, tlb, tmap) != base
        assert stream_cache_key(workload.trace, tlb, other_map) != base

    def test_key_depends_on_schema_version(self, setup, monkeypatch):
        workload, tmap = setup
        tlb = FullyAssociativeTLB(64)
        before = stream_cache_key(workload.trace, tlb, tmap)
        monkeypatch.setattr(sc, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        assert stream_cache_key(workload.trace, tlb, tmap) != before
