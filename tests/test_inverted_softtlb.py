"""Inverted page tables and software TLBs (§2 variants)."""

import pytest

from repro.addr.layout import AddressLayout
from repro.errors import ConfigurationError, PageFaultError
from repro.pagetables.inverted import ANCHOR_BYTES, InvertedPageTable
from repro.pagetables.software_tlb import SLOT_BYTES, SoftwareTLBTable
from repro.pagetables.pte import PTEKind


class TestInverted:
    def test_insert_lookup(self, layout):
        table = InvertedPageTable(layout)
        table.insert(0x123, 0x456)
        assert table.lookup(0x123).ppn == 0x456

    def test_anchor_adds_one_line(self, layout):
        # Anchor dereference + node = 2 lines where hashed pays 1.
        table = InvertedPageTable(layout)
        table.insert(0x123, 0x456)
        assert table.lookup(0x123).cache_lines == 2

    def test_empty_bucket_costs_anchor_only(self, layout):
        table = InvertedPageTable(layout)
        with pytest.raises(PageFaultError):
            table.lookup(0x999)
        assert table.stats.cache_lines == 1

    def test_size_includes_anchor_array(self, layout):
        table = InvertedPageTable(layout, num_buckets=128)
        table.insert(1, 1)
        assert table.size_bytes() == 128 * ANCHOR_BYTES + 24

    def test_size_without_anchor_array(self, layout):
        table = InvertedPageTable(layout, num_buckets=128,
                                  count_anchor_array=False)
        table.insert(1, 1)
        assert table.size_bytes() == 24

    def test_block_grain_variant(self, layout):
        table = InvertedPageTable(layout, grain=16)
        table.insert_superpage(0x100, 16, 0x400)
        result = table.lookup(0x105)
        assert result.kind is PTEKind.SUPERPAGE and result.ppn == 0x405


class TestSoftwareTLB:
    def test_insert_lookup(self, layout):
        table = SoftwareTLBTable(layout)
        table.insert(0x123, 0x456)
        assert table.lookup(0x123).ppn == 0x456

    def test_hit_costs_single_access(self, layout):
        # §7: software TLBs reduce the miss penalty to one access on a hit.
        table = SoftwareTLBTable(layout)
        table.insert(0x123, 0x456)
        table.lookup(0x123)  # first walk misses the array and refills it
        assert table.lookup(0x123).cache_lines == 1
        assert table.hits >= 1

    def test_miss_falls_back_to_backing(self, layout):
        table = SoftwareTLBTable(layout, num_sets=2, associativity=1)
        # Overflow one set so an entry falls out of the array.
        vpns = [i * 2 for i in range(8)]  # all even -> few sets
        for vpn in vpns:
            table.insert(vpn, vpn + 1)
        for vpn in vpns:
            assert table.lookup(vpn).ppn == vpn + 1
        assert table.misses > 0

    def test_refill_after_backing_hit(self, layout):
        table = SoftwareTLBTable(layout, num_sets=2, associativity=1)
        for vpn in (0, 2, 4):
            table.insert(vpn, vpn + 1)
        table.lookup(0)       # may refill slot
        first = table.lookup(0)
        assert first.ppn == 1

    def test_unmapped_faults(self, layout):
        table = SoftwareTLBTable(layout)
        with pytest.raises(PageFaultError):
            table.lookup(0x42)

    def test_remove_invalidates_slot_and_backing(self, layout):
        table = SoftwareTLBTable(layout)
        table.insert(7, 8)
        table.remove(7)
        with pytest.raises(PageFaultError):
            table.lookup(7)

    def test_size_counts_array_and_backing(self, layout):
        table = SoftwareTLBTable(layout, num_sets=16, associativity=2)
        table.insert(1, 1)
        assert table.size_bytes() == 16 * 2 * SLOT_BYTES + 24

    def test_clustered_grain_entries(self, layout):
        # §7: software TLBs can host clustered-style (block) entries.
        table = SoftwareTLBTable(layout, grain=16)
        table.insert_partial_subblock(0x10, 0b101, 0x400)
        result = table.lookup(0x102)
        assert result.kind is PTEKind.PARTIAL_SUBBLOCK
        assert result.ppn == 0x402

    def test_rejects_bad_geometry(self, layout):
        with pytest.raises(ConfigurationError):
            SoftwareTLBTable(layout, num_sets=0)

    def test_hit_rate_reporting(self, layout):
        table = SoftwareTLBTable(layout)
        table.insert(1, 2)
        table.lookup(1)
        assert 0.0 <= table.hit_rate() <= 1.0
