"""VM manager integration and the §3.1 lock-granularity comparisons."""

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import ConfigurationError, MappingExistsError
from repro.mmu.mmu import MMU
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.locks import BucketLockManager, ReadersWriterLockManager
from repro.os.physmem import ReservationAllocator
from repro.os.vm import VirtualMemoryManager
from repro.pagetables.hashed import HashedPageTable


class TestVMBasics:
    def test_map_page_syncs_everything(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        ppn = vm.map_page(0x100)
        assert vm.space.translate(0x100).ppn == ppn
        assert vm.page_table.lookup(0x100).ppn == ppn

    def test_double_map_rejected(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        vm.map_page(0x100)
        with pytest.raises(MappingExistsError):
            vm.map_page(0x100)

    def test_unmap_returns_frame(self, layout):
        allocator = ReservationAllocator(32, layout)
        vm = VirtualMemoryManager(ClusteredPageTable(layout), allocator)
        vm.map_page(0x100)
        free_before = allocator.free_frames()
        vm.unmap_page(0x100)
        assert allocator.free_frames() == free_before + 1

    def test_consistency_check(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        vm.map_range(0x100, 20)
        assert vm.check_consistency() == 20

    def test_fault_in_idempotent(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        first = vm.fault_in(0x42)
        assert vm.fault_in(0x42) == first

    def test_fault_in_as_mmu_handler(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        mmu = MMU(FullyAssociativeTLB(8), vm.page_table,
                  fault_handler=vm.fault_in)
        ppn = mmu.translate(0x77)
        assert vm.space.translate(0x77).ppn == ppn

    def test_protect_range_updates_attrs(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        vm.map_range(0x100, 8)
        vm.protect_range(0x100, 8, attrs=0x1)
        assert vm.space.translate(0x103).attrs == 0x1
        assert vm.page_table.lookup(0x103).attrs == 0x1

    def test_unmap_range(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        vm.map_range(0x100, 16)
        vm.unmap_range(0x100, 16)
        assert len(vm.space) == 0
        assert vm.page_table.node_count == 0


class TestPromotionIntegration:
    def test_auto_promotion_on_full_block(self, layout):
        vm = VirtualMemoryManager(
            ClusteredPageTable(layout),
            ReservationAllocator(256, layout),
            auto_promote=True,
        )
        vm.map_range(0x100, 32)
        assert vm.stats.promotions == 2
        assert vm.page_table.size_bytes() == 2 * 24
        assert vm.check_consistency() == 32

    def test_no_promotion_when_disabled(self, layout):
        vm = VirtualMemoryManager(
            ClusteredPageTable(layout), ReservationAllocator(256, layout)
        )
        vm.map_range(0x100, 32)
        assert vm.stats.promotions == 0

    def test_no_promotion_without_placement(self, layout):
        # A first-fit allocator that happens to misalign the block start.
        from repro.os.physmem import FrameAllocator

        allocator = FrameAllocator(256, layout)
        allocator.allocate(0)  # skew: block frames now start at 1
        vm = VirtualMemoryManager(
            ClusteredPageTable(layout), allocator, auto_promote=True
        )
        vm.map_range(0x100, 16)
        assert vm.stats.promotions == 0


class TestLockGranularity:
    def test_clustered_locks_once_per_block(self, layout):
        vm = VirtualMemoryManager(ClusteredPageTable(layout))
        vm.map_range(0x100, 64)  # four blocks
        assert vm.locks.stats.acquisitions == 4

    def test_hashed_locks_once_per_page(self, layout):
        vm = VirtualMemoryManager(HashedPageTable(layout))
        vm.map_range(0x100, 64)
        assert vm.locks.stats.acquisitions == 64

    def test_range_op_node_visits_favour_clustered(self, layout):
        # §3.1: range modification searches the hash once per block for
        # clustered, once per page for hashed.
        clustered_vm = VirtualMemoryManager(ClusteredPageTable(layout))
        hashed_vm = VirtualMemoryManager(HashedPageTable(layout))
        clustered_vm.map_range(0x100, 64)
        hashed_vm.map_range(0x100, 64)
        assert (
            clustered_vm.page_table.stats.op_nodes_allocated
            < hashed_vm.page_table.stats.op_nodes_allocated
        )


class TestLockManagers:
    def test_acquire_release_cycle(self):
        locks = BucketLockManager(4)
        locks.acquire(2)
        assert locks.held(2)
        locks.release(2)
        assert not locks.held(2)

    def test_release_unheld_rejected(self):
        with pytest.raises(ConfigurationError):
            BucketLockManager(4).release(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            BucketLockManager(4).acquire(4)

    def test_contention_counted(self):
        locks = BucketLockManager(2)
        locks.acquire(0)
        locks.acquire(0)
        assert locks.stats.contended == 1

    def test_rw_readers_share(self):
        locks = ReadersWriterLockManager(2)
        locks.acquire_read(0)
        locks.acquire_read(0)
        assert locks.readers(0) == 2
        assert locks.stats.contended == 0

    def test_rw_writer_contends_with_readers(self):
        locks = ReadersWriterLockManager(2)
        locks.acquire_read(0)
        locks.acquire(0)
        assert locks.stats.contended == 1

    def test_rw_release_read_unheld_rejected(self):
        with pytest.raises(ConfigurationError):
            ReadersWriterLockManager(2).release_read(0)

    def test_stats_split_read_write(self):
        locks = ReadersWriterLockManager(2)
        locks.acquire_read(1)
        locks.release_read(1)
        locks.acquire(1)
        assert locks.stats.read_acquisitions == 1
        assert locks.stats.write_acquisitions == 1
