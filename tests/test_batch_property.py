"""Property-based batch-engine tests: random streams, random spaces.

Hypothesis drives the differential oracle through the state space the
paper's workloads do not reach: arbitrary VPN mixes (mapped, unmapped,
and adjacent), pathologically small hashed/clustered tables where every
bucket chains many nodes, and stream orderings.  Three algebraic laws
pin the engine's structure:

- **exactness** — batch equals scalar on any stream and any table;
- **permutation invariance** — batch totals ignore stream order (they
  are count-weighted sums over unique VPNs);
- **concat additivity** — replay totals over ``a + b`` equal the sum of
  separate replays (table stats accumulate; results add field-wise).
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.addr.layout import AddressLayout
from repro.addr.space import AddressSpace
from repro.core.clustered import ClusteredPageTable
from repro.mmu.batch import replay_misses_batch
from repro.mmu.simulate import MissStream, replay_misses
from repro.os.translation_map import TranslationMap
from repro.pagetables.forward import ForwardMappedPageTable
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.linear import LinearPageTable

LAYOUT = AddressLayout()

#: The mapped region random spaces draw from (two blocks of 16 pages).
MAPPED_SPAN = 64


def build_space(mask):
    """A snapshot mapping the pages selected by ``mask`` in [0, 32)."""
    space = AddressSpace(LAYOUT)
    for vpn in range(32):
        if (mask >> vpn) & 1:
            space.map(vpn, 100 + vpn)
    return space


def build_tables(tmap, num_buckets):
    tables = {
        "linear": LinearPageTable(LAYOUT),
        "forward": ForwardMappedPageTable(LAYOUT),
        "hashed": HashedPageTable(LAYOUT, num_buckets=num_buckets),
        "clustered": ClusteredPageTable(LAYOUT, num_buckets=num_buckets),
    }
    for table in tables.values():
        tmap.populate(table, base_pages_only=True)
    return tables


def make_stream(vpns, block_miss=None):
    vpns = np.asarray(vpns, dtype=np.int64)
    if block_miss is None:
        block_miss = np.zeros(vpns.shape[0], dtype=bool)
    return MissStream(
        trace_name="synthetic",
        tlb_description="property test",
        vpns=vpns,
        block_miss=np.asarray(block_miss, dtype=bool),
        accesses=int(vpns.shape[0]),
        misses=int(vpns.shape[0]),
        tlb_block_misses=0,
        tlb_subblock_misses=0,
    )


def result_tuple(result):
    return (
        result.misses, result.cache_lines, result.probes, result.faults,
        tuple(sorted((int(k), v) for k, v in result.by_kind.items())),
    )


def stats_tuple(table):
    return (
        table.stats.lookups, table.stats.faults,
        table.stats.cache_lines, table.stats.probes,
    )


#: Random VPNs spanning mapped pages, holes, and far-away space.
vpn_strategy = st.one_of(
    st.integers(min_value=0, max_value=MAPPED_SPAN - 1),
    st.integers(min_value=0, max_value=1 << 40),
)

stream_strategy = st.lists(vpn_strategy, min_size=1, max_size=200)

#: Tiny bucket counts force hash collisions and long probe chains.
buckets_strategy = st.sampled_from((2, 4, 64))

mask_strategy = st.integers(min_value=1, max_value=(1 << 32) - 1)


@settings(max_examples=30, deadline=None)
@given(mask=mask_strategy, vpns=stream_strategy, buckets=buckets_strategy)
def test_batch_equals_scalar_on_random_streams(mask, vpns, buckets):
    tmap = TranslationMap.from_space(build_space(mask))
    stream = make_stream(vpns)
    scalar_tables = build_tables(tmap, buckets)
    batch_tables = build_tables(tmap, buckets)
    for name in scalar_tables:
        scalar = replay_misses(stream, scalar_tables[name])
        batch = replay_misses_batch(stream, batch_tables[name])
        assert result_tuple(batch) == result_tuple(scalar), name
        assert stats_tuple(batch_tables[name]) == stats_tuple(
            scalar_tables[name]
        ), name


@settings(max_examples=20, deadline=None)
@given(
    mask=mask_strategy,
    vpns=st.lists(vpn_strategy, min_size=1, max_size=100),
    block_bits=st.integers(min_value=0, max_value=(1 << 100) - 1),
    buckets=buckets_strategy,
)
def test_batch_equals_scalar_in_complete_subblock_mode(
    mask, vpns, block_bits, buckets
):
    """Block-walk replay (§4.4) under random block/subblock miss mixes."""
    tmap = TranslationMap.from_space(build_space(mask))
    block_miss = [(block_bits >> i) & 1 == 1 for i in range(len(vpns))]
    stream = make_stream(vpns, block_miss)
    scalar_tables = build_tables(tmap, buckets)
    batch_tables = build_tables(tmap, buckets)
    for name in scalar_tables:
        scalar = replay_misses(
            stream, scalar_tables[name], complete_subblock=True
        )
        batch = replay_misses_batch(
            stream, batch_tables[name], complete_subblock=True
        )
        assert result_tuple(batch) == result_tuple(scalar), name
        assert stats_tuple(batch_tables[name]) == stats_tuple(
            scalar_tables[name]
        ), name


@settings(max_examples=25, deadline=None)
@given(
    mask=mask_strategy,
    vpns=stream_strategy,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_batch_totals_are_permutation_invariant(mask, vpns, seed):
    tmap = TranslationMap.from_space(build_space(mask))
    stream = make_stream(vpns)
    shuffled_vpns = np.array(vpns, dtype=np.int64)
    np.random.RandomState(seed).shuffle(shuffled_vpns)
    shuffled = replace(stream, vpns=shuffled_vpns)
    tables = build_tables(tmap, 4)
    shuffled_tables = build_tables(tmap, 4)
    for name in tables:
        ordered = replay_misses_batch(stream, tables[name])
        permuted = replay_misses_batch(shuffled, shuffled_tables[name])
        assert result_tuple(permuted) == result_tuple(ordered), name
        assert stats_tuple(shuffled_tables[name]) == stats_tuple(
            tables[name]
        ), name


@settings(max_examples=25, deadline=None)
@given(
    mask=mask_strategy,
    left=st.lists(vpn_strategy, min_size=1, max_size=100),
    right=st.lists(vpn_strategy, min_size=1, max_size=100),
)
def test_batch_totals_are_concat_additive(mask, left, right):
    """replay(a + b) == replay(a) + replay(b), field by field."""
    tmap = TranslationMap.from_space(build_space(mask))
    whole_tables = build_tables(tmap, 4)
    split_tables = build_tables(tmap, 4)
    for name in whole_tables:
        whole = replay_misses_batch(
            make_stream(left + right), whole_tables[name]
        )
        first = replay_misses_batch(make_stream(left), split_tables[name])
        second = replay_misses_batch(make_stream(right), split_tables[name])
        assert whole.misses == first.misses + second.misses, name
        assert whole.cache_lines == first.cache_lines + second.cache_lines
        assert whole.probes == first.probes + second.probes, name
        assert whole.faults == first.faults + second.faults, name
        combined = dict(first.by_kind)
        for kind, count in second.by_kind.items():
            combined[kind] = combined.get(kind, 0) + count
        assert dict(whole.by_kind) == combined, name
        # Two replays accumulate the same table stats as one big one.
        assert stats_tuple(split_tables[name]) == stats_tuple(
            whole_tables[name]
        ), name


@pytest.mark.parametrize("buckets", (2, 4))
def test_tiny_tables_chain_heavily_and_still_match(buckets):
    """Every page in one bucket-starved table: worst-case probe chains."""
    space = build_space((1 << 32) - 1)  # all 32 pages mapped
    tmap = TranslationMap.from_space(space)
    stream = make_stream(list(range(40)) * 5)  # mapped + 8 holes, repeated
    scalar_tables = build_tables(tmap, buckets)
    batch_tables = build_tables(tmap, buckets)
    for name in ("hashed", "clustered"):
        scalar = replay_misses(stream, scalar_tables[name])
        batch = replay_misses_batch(stream, batch_tables[name])
        assert result_tuple(batch) == result_tuple(scalar), name
    # The point of the starved hashed table: 32 PTEs over `buckets`
    # chains means walks probe many nodes.  (Clustered collapses 16
    # pages per node, so its chains stay short here.)
    hashed = replay_misses(make_stream(list(range(40)) * 5),
                           build_tables(tmap, buckets)["hashed"])
    assert hashed.probes > hashed.misses - hashed.faults
