"""End-to-end profiler pipeline: one profiled parallel run, then every
consumer of its artefacts — trace nesting/coverage, the registry-vs-
tracer differential, ``repro.cli report`` / ``metrics --from``, and the
bench-gate sidecar validator — asserted against the same run directory.
"""

import importlib.util
import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import cli
from repro.experiments import common, runner
from repro.obs.metrics import MetricsRegistry, reset_registry
from repro.obs.spans import (
    export_chrome_trace,
    load_chrome_trace,
    validate_nesting,
)
from repro.resilience.journal import (
    JOURNAL_NAME,
    METRICS_NAME,
    PROFILE_NAME,
    REPORT_NAME,
    REPORT_SIDECAR_NAME,
    TRACE_NAME,
)

SUBSET = ("table1", "fig11d")
WORKLOADS = ("mp3d",)
TRACE_LENGTH = 12_000


@pytest.fixture(scope="module")
def profiled_run(tmp_path_factory):
    """One profiled ``--jobs 2`` run; shared by every test below."""
    root = tmp_path_factory.mktemp("profiled")
    run_dir = root / "run"
    run_dir.mkdir()
    common.clear_caches()
    reset_registry()
    try:
        results, metrics = runner.run_all_with_metrics(
            TRACE_LENGTH, jobs=2, cache_dir=str(root / "streams"),
            workloads=WORKLOADS, only=SUBSET,
            resilience=runner.ResilienceConfig(run_dir=str(run_dir)),
            profile=True,
        )
        export_chrome_trace(metrics.spans, run_dir / TRACE_NAME)
        registry_state = json.loads(
            json.dumps(runner.get_registry().state())
        )
    finally:
        common.clear_caches()
        common.configure_stream_cache(None)
        reset_registry()
    return SimpleNamespace(
        run_dir=run_dir, results=results, metrics=metrics,
        registry_state=registry_state,
    )


class TestRunArtifacts:
    def test_run_dir_holds_every_artifact(self, profiled_run):
        for name in (JOURNAL_NAME, METRICS_NAME, PROFILE_NAME, TRACE_NAME):
            assert (profiled_run.run_dir / name).exists(), name

    def test_metrics_json_round_trips_the_registry(self, profiled_run):
        doc = json.loads(
            (profiled_run.run_dir / METRICS_NAME).read_text()
        )
        assert doc["metrics_version"] == 1
        rebuilt = MetricsRegistry()
        rebuilt.merge_state(doc["registry"])
        assert rebuilt.state() == profiled_run.registry_state
        assert doc["run"]["jobs"] == 2
        assert doc["run"]["completed"] == list(SUBSET)

    def test_walk_profile_totals_match_registry_histograms(self, profiled_run):
        """The differential ISSUE pins: per table, the registry's
        log2-bucketed ``walk.cache_lines`` totals must equal the exact
        profile's line totals — they are two views of one tracer feed."""
        profile_doc = json.loads(
            (profiled_run.run_dir / PROFILE_NAME).read_text()
        )
        registry = MetricsRegistry()
        registry.merge_state(profiled_run.registry_state)
        tables = profile_doc["tables"]
        assert tables, "profiled run saw no page-table walks"
        for name, table in tables.items():
            histogram = registry.histogram("walk.cache_lines", table=name)
            assert histogram.count == table["walks"], name
            assert histogram.total == table["total_lines"], name
            assert (sum(count for _, count in histogram.as_dict()["buckets"])
                    + histogram.zeros == histogram.count), name
            probes = registry.histogram("walk.probes", table=name)
            assert probes.total == table["total_probes"], name
        assert profile_doc["total_lines"] == sum(
            t["total_lines"] for t in tables.values()
        )


class TestTraceTimeline:
    def test_spans_nest_and_cover_the_run(self, profiled_run):
        spans = load_chrome_trace(profiled_run.run_dir / TRACE_NAME)
        assert validate_nesting(spans) == []
        roots = [s for s in spans if s.name == "run"]
        assert len(roots) == 1
        run_span = roots[0]
        wall_us = profiled_run.metrics.wall_seconds * 1e6
        assert run_span.duration_us >= 0.99 * wall_us
        # Phases and tasks lie inside the run span on the parent track.
        for span in spans:
            if span.pid == run_span.pid:
                assert span.start_us >= run_span.start_us
                assert span.end_us <= run_span.end_us
        # Worker tasks landed on their own tracks.
        assert {s.pid for s in spans} - {run_span.pid}, "no worker spans"
        categories = {s.category for s in spans}
        assert {"run", "phase"} <= categories
        assert {"prewarm", "experiment"} & categories

    def test_span_summary_reports_full_coverage(self, profiled_run):
        summary = profiled_run.metrics.span_summary()
        assert summary["count"] == len(profiled_run.metrics.spans)
        assert summary["run_coverage"] >= 0.99


class TestReportCli:
    def test_report_command_writes_markdown_and_sidecar(
        self, profiled_run, capsys
    ):
        assert cli.main(["report", str(profiled_run.run_dir)]) == 0
        rendered = capsys.readouterr().out
        report_path = profiled_run.run_dir / REPORT_NAME
        sidecar_path = profiled_run.run_dir / REPORT_SIDECAR_NAME
        assert report_path.exists() and sidecar_path.exists()
        markdown = report_path.read_text()
        assert markdown.lstrip().startswith("# Run report")
        for heading in ("## Run summary", "## Experiments", "## Metrics",
                        "## Walk profile", "## Span timeline", "## Failures"):
            assert heading in markdown, heading
        assert "walk.cache_lines" in markdown
        assert markdown in rendered
        sidecar = json.loads(sidecar_path.read_text())
        assert sidecar["report_version"] == 1
        assert [t["experiment"] for t in sidecar["experiments"]] == list(SUBSET)
        assert sidecar["failures"] == []
        assert sidecar["walk_profile"], "sidecar dropped the walk profile"

    def test_report_percentiles_match_profile_artifact(self, profiled_run):
        markdown, sidecar = __import__(
            "repro.analysis.report", fromlist=["render_run_report"]
        ).render_run_report(profiled_run.run_dir)
        profile_doc = json.loads(
            (profiled_run.run_dir / PROFILE_NAME).read_text()
        )
        for name, table in profile_doc["tables"].items():
            row = next(
                line for line in markdown.splitlines()
                if line.startswith(f"{name} ")
            )
            cells = row.split()
            # table walks faults mean p50 p95 p99 probes-p50 -p95 -p99
            assert [int(c) for c in cells[4:7]] == [
                table["lines_p50"], table["lines_p95"], table["lines_p99"]
            ], name
            assert [int(c) for c in cells[7:10]] == [
                table["probes_p50"], table["probes_p95"], table["probes_p99"]
            ], name
            assert sidecar["walk_profile"][name]["lines_p99"] == (
                table["lines_p99"]
            )

    def test_metrics_from_run_dir(self, profiled_run, capsys):
        assert cli.main(
            ["metrics", "--from", str(profiled_run.run_dir), "--json"]
        ) == 0
        dumped = json.loads(capsys.readouterr().out)
        rebuilt = MetricsRegistry()
        rebuilt.merge_state(
            json.loads(
                (profiled_run.run_dir / METRICS_NAME).read_text()
            )["registry"]
        )
        assert dumped == rebuilt.snapshot()

    def test_report_on_missing_dir_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "never-ran"
        assert cli.main(["report", str(missing)]) == 1
        assert "no" in capsys.readouterr().out.lower()


def _load_bench_gate():
    path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks" / "bench_gate.py"
    )
    spec = importlib.util.spec_from_file_location("bench_gate", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSidecarGate:
    def test_real_sidecar_validates(self, profiled_run):
        gate = _load_bench_gate()
        assert cli.main(["report", str(profiled_run.run_dir)]) == 0
        sidecar = json.loads(
            (profiled_run.run_dir / REPORT_SIDECAR_NAME).read_text()
        )
        assert gate.validate_report_sidecar(sidecar) == []
        assert gate.main(
            ["--report-sidecar",
             str(profiled_run.run_dir / REPORT_SIDECAR_NAME)]
        ) == 0

    def test_malformed_sidecars_are_rejected(self, tmp_path):
        gate = _load_bench_gate()
        assert gate.validate_report_sidecar([]) != []
        assert any(
            "report_version" in problem
            for problem in gate.validate_report_sidecar({"report_version": 9})
        )
        bad = {
            "report_version": 1, "run_dir": "x",
            "metrics": {"counters": [["a", {}, 1]], "gauges": [],
                        "histograms": [["h", {}]]},  # not a triple
            "run": {}, "phases": [], "experiments": [], "failures": [],
        }
        assert any(
            "triples" in problem
            for problem in gate.validate_report_sidecar(bad)
        )
        assert gate.main(["--report-sidecar", str(tmp_path / "nope.json")]) == 1
