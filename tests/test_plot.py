"""Terminal bar-chart rendering."""

import pytest

from repro.analysis.plot import bar_chart, chart_result
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult


class TestBarChart:
    def test_basic_structure(self):
        text = bar_chart(
            ["a", "b"], {"x": [1.0, 2.0], "y": [0.5, 1.5]}, title="T"
        )
        assert text.startswith("T\n=")
        assert "a:" in text and "b:" in text
        assert "1.00" in text and "2.00" in text
        assert "x" in text.splitlines()[-1]  # legend

    def test_clip_marks_truncation(self):
        text = bar_chart(["a"], {"x": [10.0]}, clip=5.0)
        assert "(clipped)" in text and "10.00" in text

    def test_reference_tick_drawn(self):
        text = bar_chart(["a"], {"x": [0.2], "y": [1.0]}, reference=1.0)
        assert "|" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a", "b"], {"x": [1.0]})

    def test_bars_scale_monotonically(self):
        text = bar_chart(["a"], {"x": [1.0], "y": [2.0]})
        lines = [l for l in text.splitlines() if "▰" in l or "▱" in l]
        assert len(lines[0].split()[1]) < len(lines[1].split()[1])


class TestChartResult:
    def make_result(self):
        return ExperimentResult(
            experiment="E",
            headers=["workload", "hashed", "clustered", "note"],
            rows=[["w1", 1.0, 0.4, "x"], ["w2", 1.0, 0.5, "y"]],
        )

    def test_numeric_columns_become_series(self):
        text = chart_result(self.make_result())
        assert "hashed" in text and "clustered" in text
        assert "note" not in text.splitlines()[-1]

    def test_no_numeric_columns_rejected(self):
        result = ExperimentResult(
            experiment="E", headers=["a", "b"], rows=[["x", "y"]]
        )
        with pytest.raises(ConfigurationError):
            chart_result(result)
