"""Address-layout arithmetic: VPN/VPBN/Boff splitting and alignment."""

import pytest
from hypothesis import given, strategies as st

from repro.addr.layout import (
    AddressLayout,
    DEFAULT_LAYOUT,
    KB,
    is_power_of_two,
    log2_exact,
)
from repro.errors import AddressError, AlignmentError, ConfigurationError


class TestHelpers:
    def test_power_of_two_true(self):
        for value in (1, 2, 4, 4096, 1 << 51):
            assert is_power_of_two(value)

    def test_power_of_two_false(self):
        for value in (0, -4, 3, 6, 4097):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(4096) == 12
        assert log2_exact(1) == 0

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_exact(12)


class TestConstruction:
    def test_defaults_match_paper(self):
        assert DEFAULT_LAYOUT.page_size == 4 * KB
        assert DEFAULT_LAYOUT.subblock_factor == 16
        assert DEFAULT_LAYOUT.block_size == 64 * KB
        assert DEFAULT_LAYOUT.va_bits == 64
        assert DEFAULT_LAYOUT.pa_bits == 40

    def test_derived_bit_widths(self):
        assert DEFAULT_LAYOUT.vpn_bits == 52
        assert DEFAULT_LAYOUT.ppn_bits == 28  # Figure 1's 28-bit PPN

    def test_custom_subblock_factor(self):
        layout = AddressLayout(subblock_factor=4)
        assert layout.block_size == 16 * KB

    def test_rejects_non_power_of_two_factor(self):
        with pytest.raises(ConfigurationError):
            AddressLayout(subblock_factor=12)

    def test_rejects_bad_page_shift(self):
        with pytest.raises(ConfigurationError):
            AddressLayout(page_shift=0)
        with pytest.raises(ConfigurationError):
            AddressLayout(page_shift=64)

    def test_rejects_pa_smaller_than_page(self):
        with pytest.raises(ConfigurationError):
            AddressLayout(pa_bits=10)

    def test_describe_mentions_key_numbers(self):
        text = DEFAULT_LAYOUT.describe()
        assert "64-bit" in text and "4 KB" in text and "16" in text


class TestDecomposition:
    def test_vpn_and_offset(self, layout):
        va = (0x1234 << 12) | 0x567
        assert layout.vpn(va) == 0x1234
        assert layout.page_offset(va) == 0x567

    def test_va_of_vpn_roundtrip(self, layout):
        assert layout.va_of_vpn(layout.vpn(0x89AB000)) == 0x89AB000

    def test_split_block_coordinates(self, layout):
        vpn = 16 * 7 + 5
        assert layout.split(vpn) == (7, 5)

    def test_vpn_of_block_inverse(self, layout):
        for vpn in (0, 5, 16, 255, 0xFFFF):
            vpbn, boff = layout.split(vpn)
            assert layout.vpn_of_block(vpbn, boff) == vpn

    def test_block_base_vpn(self, layout):
        assert layout.block_base_vpn(0x12345) == 0x12340

    def test_block_vpns_covers_whole_block(self, layout):
        vpns = list(layout.block_vpns(3))
        assert vpns == list(range(48, 64))

    def test_bad_boff_rejected(self, layout):
        with pytest.raises(AddressError):
            layout.vpn_of_block(1, 16)

    def test_va_out_of_range(self, layout):
        with pytest.raises(AddressError):
            layout.vpn(1 << 64)
        with pytest.raises(AddressError):
            layout.vpn(-1)

    def test_vpn_out_of_range(self, layout):
        with pytest.raises(AddressError):
            layout.check_vpn(1 << 52)

    def test_ppn_out_of_range(self, layout):
        with pytest.raises(AddressError):
            layout.check_ppn(1 << 28)


class TestSuperpages:
    def test_superpage_pages(self, layout):
        assert layout.superpage_pages(64 * KB) == 16
        assert layout.superpage_pages(4 * KB) == 1

    def test_superpage_pages_rejects_non_multiple(self, layout):
        with pytest.raises(AlignmentError):
            layout.superpage_pages(5000)

    def test_superpage_pages_rejects_non_power_of_two(self, layout):
        with pytest.raises(AlignmentError):
            layout.superpage_pages(12 * KB)

    def test_alignment_check(self, layout):
        assert layout.is_superpage_aligned(32, 16)
        assert not layout.is_superpage_aligned(33, 16)

    def test_superpage_base(self, layout):
        assert layout.superpage_base(0x12345, 16) == 0x12340

    def test_properly_placed_matching_offsets(self, layout):
        assert layout.properly_placed(vpn=0x120, ppn=0x340, npages=16)
        assert layout.properly_placed(vpn=0x125, ppn=0x345, npages=16)

    def test_improperly_placed(self, layout):
        assert not layout.properly_placed(vpn=0x125, ppn=0x346, npages=16)

    def test_placement_rejects_bad_npages(self, layout):
        with pytest.raises(AlignmentError):
            layout.properly_placed(0, 0, 12)


@given(vpn=st.integers(min_value=0, max_value=(1 << 52) - 1))
def test_split_roundtrip_property(vpn):
    """split / vpn_of_block are exact inverses over the whole VPN range."""
    layout = DEFAULT_LAYOUT
    vpbn, boff = layout.split(vpn)
    assert layout.vpn_of_block(vpbn, boff) == vpn
    assert 0 <= boff < layout.subblock_factor


@given(
    vpn=st.integers(min_value=0, max_value=(1 << 52) - 1),
    shift=st.sampled_from([1, 2, 4, 8, 16, 32]),
)
def test_superpage_base_contains_vpn_property(vpn, shift):
    """The superpage base is aligned and covers the page."""
    layout = DEFAULT_LAYOUT
    base = layout.superpage_base(vpn, shift)
    assert base % shift == 0
    assert base <= vpn < base + shift


@given(
    factor=st.sampled_from([2, 4, 8, 16, 32, 64]),
    vpn=st.integers(min_value=0, max_value=(1 << 40) - 1),
)
def test_block_arithmetic_consistent_across_factors(factor, vpn):
    """Block decomposition is self-consistent for any subblock factor."""
    layout = AddressLayout(subblock_factor=factor)
    vpbn, boff = layout.split(vpn)
    assert vpbn * factor + boff == vpn
    assert layout.block_base_vpn(vpn) == vpbn * factor
