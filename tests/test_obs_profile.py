"""Walk profiles: exact percentiles, heat rows, merging, tracer feed."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    HEAT_CELLS,
    TableProfile,
    WalkProfile,
    _exact_percentile,
    heat_cell,
)
from repro.obs.trace import WalkTracer


class TestHeatCell:
    def test_range_and_determinism(self):
        cells = [heat_cell(vpn) for vpn in range(10_000)]
        assert all(0 <= cell < HEAT_CELLS for cell in cells)
        assert cells == [heat_cell(vpn) for vpn in range(10_000)]

    def test_sequential_vpns_scatter(self):
        # The Fibonacci fold must spread a dense VPN range over every
        # cell, or the heat row would just mirror address order.
        hit = {heat_cell(vpn) for vpn in range(256)}
        assert hit == set(range(HEAT_CELLS))


class TestExactPercentile:
    def test_nearest_rank(self):
        values = {1: 5, 2: 3, 10: 2}  # ranks 1-5 → 1, 6-8 → 2, 9-10 → 10
        assert _exact_percentile(values, 0.50) == 1
        assert _exact_percentile(values, 0.80) == 2
        assert _exact_percentile(values, 0.95) == 10
        assert _exact_percentile(values, 1.0) == 10
        assert _exact_percentile({}, 0.5) == 0


class TestTableProfile:
    def test_record_accumulates_every_dimension(self):
        profile = TableProfile()
        profile.record(vpn=1, kind="base", lines=1, probes=1, fault=False)
        profile.record(vpn=2, kind="base", lines=3, probes=2, fault=False,
                       node=1)
        profile.record(vpn=3, kind="fault", lines=0, probes=4, fault=True)
        assert profile.walks == 3 and profile.faults == 1
        assert profile.total_lines == 4 and profile.total_probes == 7
        assert profile.kinds == {"base": 2, "fault": 1}
        assert profile.lines_by_node == {1: 3}
        assert sum(profile.heat) == profile.total_lines

    def test_merge_equals_combined_and_round_trips(self):
        left, right, combined = TableProfile(), TableProfile(), TableProfile()
        for i in range(40):
            target = left if i % 2 else right
            target.record(vpn=i, kind="base", lines=i % 5, probes=1 + i % 3,
                          fault=False, node=i % 2)
            combined.record(vpn=i, kind="base", lines=i % 5, probes=1 + i % 3,
                            fault=False, node=i % 2)
        left.merge(right)
        assert left.as_dict() == combined.as_dict()
        doc = json.loads(json.dumps(combined.as_dict()))
        assert TableProfile.from_dict(doc).as_dict() == combined.as_dict()


class TestWalkProfile:
    def test_tables_are_independent_and_merge_dict_folds(self):
        parent, worker = WalkProfile(), WalkProfile()
        parent.record("hashed", vpn=1, kind="base", lines=2, probes=2,
                      fault=False)
        worker.record("hashed", vpn=2, kind="base", lines=4, probes=3,
                      fault=False)
        worker.record("clustered", vpn=3, kind="superpage", lines=1, probes=1,
                      fault=False)
        parent.merge_dict(json.loads(json.dumps(worker.as_dict())))
        assert parent.total_walks == 3
        assert parent.total_lines == 7
        assert parent.table("hashed").walks == 2
        assert parent.table("clustered").kinds == {"superpage": 1}
        rebuilt = WalkProfile.from_dict(parent.as_dict())
        assert rebuilt.as_dict() == parent.as_dict()


class TestTracerFeed:
    """WalkTracer.record is the single source for trace, registry
    histograms, and the profile — the three views can never disagree."""

    def _drive(self, tracer, walks=50):
        for i in range(walks):
            tracer.record(
                table="hashed", op="translate", vpn=i, kind="base",
                lines=1 + i % 4, probes=1 + i % 2, fault=(i % 10 == 0),
                node=0,
            )

    def test_registry_and_profile_agree_with_totals(self):
        registry = MetricsRegistry()
        profile = WalkProfile()
        tracer = WalkTracer(capacity=8, registry=registry, profile=profile)
        self._drive(tracer)
        table = profile.table("hashed")
        histogram = registry.histogram("walk.cache_lines", table="hashed")
        assert histogram.count == table.walks == 50
        assert histogram.total == table.total_lines == tracer.total_lines
        assert (sum(histogram.buckets.values()) + histogram.zeros
                == histogram.count)
        probes = registry.histogram("walk.probes", table="hashed")
        assert probes.total == table.total_probes == tracer.total_probes
        # Exact profile percentiles bound the bucketed estimates.
        assert histogram.minimum <= table.lines_percentile(0.5)
        assert table.lines_percentile(0.99) <= histogram.maximum

    def test_attach_after_construction(self):
        registry = MetricsRegistry()
        tracer = WalkTracer(capacity=8)
        self._drive(tracer, walks=10)  # unattached: nothing observed
        assert registry.histogram("walk.cache_lines", table="hashed").count == 0
        tracer.attach(registry=registry, profile=WalkProfile())
        self._drive(tracer, walks=10)
        assert registry.histogram("walk.cache_lines", table="hashed").count == 10
        assert tracer.profile.total_walks == 10
