"""The walk tracer: ring bounds, installation, suppression, JSONL export."""

import json

import pytest

from repro.obs.trace import (
    WalkEvent,
    WalkTracer,
    active_tracer,
    emit,
    install_tracer,
    suppressed,
    trace_walks,
    uninstall_tracer,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


def record_n(tracer, n, lines=2, fault=False, op="walk"):
    for i in range(n):
        tracer.record("hashed", op, 0x1000 + i, "BASE", lines, 1, fault, 0)


class TestRing:
    def test_capacity_bounds_retention_and_counts_drops(self):
        tracer = WalkTracer(capacity=4)
        record_n(tracer, 10)
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        # Oldest dropped first: the ring retains the last four sequences.
        assert [event.seq for event in tracer.events()] == [6, 7, 8, 9]

    def test_totals_survive_ring_overflow(self):
        tracer = WalkTracer(capacity=2)
        record_n(tracer, 8, lines=3)
        assert tracer.total_lines == 24  # all 8 events, not just retained
        assert tracer.total_probes == 8

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            WalkTracer(capacity=0)

    def test_clear_zeroes_everything(self):
        tracer = WalkTracer(capacity=8)
        record_n(tracer, 5)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 0
        assert tracer.total_lines == 0
        assert tracer.lines_by_table == {}


class TestReplayLines:
    def test_faulting_walks_charge_no_replay_lines(self):
        tracer = WalkTracer()
        record_n(tracer, 3, lines=5, fault=False)
        record_n(tracer, 2, lines=7, fault=True)
        assert tracer.total_lines == 3 * 5 + 2 * 7
        assert tracer.replay_lines == 3 * 5  # replay charges no fault lines
        assert tracer.faults == 2

    def test_faulting_block_fetches_do_charge(self):
        # replay_misses adds block.cache_lines before its fault check, so
        # the replay-equivalent total must include faulting block ops.
        tracer = WalkTracer()
        record_n(tracer, 2, lines=4, fault=True, op="block")
        assert tracer.replay_lines == 8


class TestInstallation:
    def test_emit_routes_to_active_tracer_only(self):
        tracer = WalkTracer()
        emit("hashed", "walk", 1, "BASE", 1, 1, False, 0)
        assert tracer.recorded == 0  # not installed yet
        install_tracer(tracer)
        assert active_tracer() is tracer
        emit("hashed", "walk", 1, "BASE", 1, 1, False, 0)
        assert tracer.recorded == 1
        uninstall_tracer(tracer)
        assert active_tracer() is None
        emit("hashed", "walk", 1, "BASE", 1, 1, False, 0)
        assert tracer.recorded == 1

    def test_uninstall_of_inactive_tracer_is_a_noop(self):
        active = install_tracer(WalkTracer())
        uninstall_tracer(WalkTracer())  # someone else's tracer
        assert active_tracer() is active

    def test_context_manager_scopes_installation(self):
        with trace_walks(capacity=16) as tracer:
            assert active_tracer() is tracer
            emit("linear", "walk", 2, "BASE", 1, 1, False, 0)
        assert active_tracer() is None
        assert tracer.recorded == 1

    def test_tracer_object_is_a_context_manager(self):
        tracer = WalkTracer()
        with tracer:
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_suppression_silences_nested_emission(self):
        with trace_walks() as tracer:
            with suppressed():
                emit("hashed", "walk", 1, "BASE", 1, 1, False, 0)
                with suppressed():
                    emit("hashed", "walk", 2, "BASE", 1, 1, False, 0)
                emit("hashed", "walk", 3, "BASE", 1, 1, False, 0)
            emit("hashed", "walk", 4, "BASE", 1, 1, False, 0)
        assert tracer.recorded == 1
        assert tracer.events()[0].vpn == 4


class TestExport:
    def test_jsonl_header_plus_events(self, tmp_path):
        tracer = WalkTracer(capacity=4)
        record_n(tracer, 6, lines=2)
        path = tracer.export_jsonl(tmp_path / "trace" / "walks.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])["trace_header"]
        assert header["recorded"] == 6
        assert header["dropped"] == 2
        assert header["retained"] == 4
        assert header["total_lines"] == 12
        events = [json.loads(line) for line in lines[1:]]
        assert len(events) == 4
        assert events[0]["table"] == "hashed"
        assert events[0]["op"] == "walk"
        assert {event["seq"] for event in events} == {2, 3, 4, 5}

    def test_event_json_round_trip(self):
        event = WalkEvent(
            seq=3, table="clustered", op="block", vpn=0x42, kind="BASE",
            lines=2, probes=1, fault=False, node=1,
        )
        assert json.loads(event.to_json()) == {
            "seq": 3, "table": "clustered", "op": "block", "vpn": 0x42,
            "kind": "BASE", "lines": 2, "probes": 1, "fault": False,
            "node": 1,
        }

    def test_summary_mentions_counts(self):
        tracer = WalkTracer()
        record_n(tracer, 3, lines=2, fault=True)
        text = tracer.summary()
        assert "3 events" in text and "6 lines" in text and "3 faults" in text


class TestHookIntegration:
    def test_single_lookup_emits_one_event(self):
        from repro.pagetables.hashed import HashedPageTable

        table = HashedPageTable(num_buckets=16)
        table.insert(0x10, 0x99)
        with trace_walks() as tracer:
            result = table.lookup(0x10)
        assert tracer.recorded == 1
        event = tracer.events()[0]
        assert event.table == table.name
        assert event.vpn == 0x10
        assert event.kind == result.kind.name
        assert not event.fault
        assert event.lines >= 1

    def test_faulting_lookup_emits_fault_event(self):
        from repro.errors import PageFaultError
        from repro.pagetables.hashed import HashedPageTable

        table = HashedPageTable(num_buckets=16)
        with trace_walks() as tracer:
            with pytest.raises(PageFaultError):
                table.lookup(0x123)
        assert tracer.recorded == 1
        assert tracer.events()[0].fault
        assert tracer.events()[0].kind == "fault"
        assert tracer.faults == 1

    def test_composite_table_emits_exactly_one_block_event(self):
        from repro.os.translation_map import TranslationMap
        from repro.pagetables.hashed import HashedPageTable
        from repro.pagetables.strategies import MultiplePageTables
        from repro.workloads.suite import load_workload

        workload = load_workload("mp3d", trace_length=2_000)
        tmap = TranslationMap.from_space(workload.union_space())
        table = MultiplePageTables(
            [HashedPageTable(num_buckets=64), HashedPageTable(num_buckets=64)]
        )
        tmap.populate(table, base_pages_only=True)
        vpbn = table.layout.vpbn(next(iter(workload.union_space().items()))[0])
        with trace_walks() as tracer:
            table.lookup_block(vpbn)
        assert tracer.recorded == 1  # constituents suppressed
        assert tracer.events()[0].op == "block"

    def test_numa_node_is_carried_on_events(self):
        from repro.numa.replication import ReplicatedPageTable
        from repro.numa.topology import PRESETS
        from repro.pagetables.hashed import HashedPageTable

        replicated = ReplicatedPageTable(
            lambda: HashedPageTable(num_buckets=16), PRESETS["2-node"]
        )
        replicated.insert(0x20, 0x80)
        with trace_walks() as tracer:
            replicated.lookup(0x20, node=0)
            replicated.lookup(0x20, node=1)
        assert [event.node for event in tracer.events()] == [0, 1]
        assert tracer.lines_by_node[0] == tracer.lines_by_node[1] > 0
