"""Docstring examples stay correct: run doctests in modules that have them."""

import doctest

import pytest

import repro.addr.layout
import repro.addr.space
import repro.pagetables.pte

MODULES_WITH_EXAMPLES = [
    repro.addr.layout,
    repro.addr.space,
    repro.pagetables.pte,
]


@pytest.mark.parametrize("module", MODULES_WITH_EXAMPLES,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
