"""Protection enforcement and copy-on-write."""

import pytest

from repro.addr.layout import AddressLayout
from repro.core.clustered import ClusteredPageTable
from repro.errors import PageFaultError, ProtectionFaultError
from repro.mmu.mmu import MMU
from repro.mmu.tlb import FullyAssociativeTLB
from repro.os.cow import COWManager
from repro.pagetables.pte import ATTR_READ, ATTR_WRITE


class TestProtectionEnforcement:
    def make_mmu(self, layout, handler=None):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=ATTR_READ)          # read-only
        table.insert(0x101, 0x401, attrs=ATTR_READ | ATTR_WRITE)
        return MMU(
            FullyAssociativeTLB(8), table, enforce_protection=True,
            protection_handler=handler,
        ), table

    def test_read_of_read_only_page_ok(self, layout):
        mmu, _ = self.make_mmu(layout)
        assert mmu.translate(0x100) == 0x400

    def test_write_to_read_only_page_faults(self, layout):
        mmu, _ = self.make_mmu(layout)
        with pytest.raises(ProtectionFaultError) as excinfo:
            mmu.translate(0x100, write=True)
        assert excinfo.value.vpn == 0x100
        assert mmu.stats.protection_faults == 1

    def test_write_to_writable_page_ok(self, layout):
        mmu, _ = self.make_mmu(layout)
        assert mmu.translate(0x101, write=True) == 0x401

    def test_fault_on_cached_entry_too(self, layout):
        # Hit path must also enforce (the entry carries the attributes).
        mmu, _ = self.make_mmu(layout)
        mmu.translate(0x100)  # load entry via read
        with pytest.raises(ProtectionFaultError):
            mmu.translate(0x100, write=True)

    def test_handler_fixes_and_retries(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=ATTR_READ)

        def grant_write(vpn):
            table.mark(vpn, set_bits=ATTR_WRITE)

        mmu = MMU(FullyAssociativeTLB(8), table, enforce_protection=True,
                  protection_handler=grant_write)
        assert mmu.translate(0x100, write=True) == 0x400
        assert mmu.stats.protection_faults == 1
        # Second write: no further faults.
        mmu.translate(0x100, write=True)
        assert mmu.stats.protection_faults == 1

    def test_handler_that_fixes_nothing_raises_on_retry(self, layout):
        mmu, _ = self.make_mmu(layout, handler=lambda vpn: None)
        with pytest.raises(ProtectionFaultError):
            mmu.translate(0x100, write=True)

    def test_disabled_by_default(self, layout):
        table = ClusteredPageTable(layout)
        table.insert(0x100, 0x400, attrs=ATTR_READ)
        mmu = MMU(FullyAssociativeTLB(8), table)
        assert mmu.translate(0x100, write=True) == 0x400


class TestCOW:
    def make(self, layout, pages=8):
        cow = COWManager(
            ClusteredPageTable(layout), ClusteredPageTable(layout),
            lambda: FullyAssociativeTLB(16), frames=256,
        )
        for i in range(pages):
            cow.map_parent(0x100 + i)
        cow.fork()
        return cow

    def test_fork_shares_frames(self, layout):
        cow = self.make(layout)
        assert cow.shared_pages == 8
        assert cow.read("parent", 0x100) == cow.read("child", 0x100)
        cow.check_consistency()

    def test_reads_do_not_break_sharing(self, layout):
        cow = self.make(layout)
        for i in range(8):
            cow.read("parent", 0x100 + i)
            cow.read("child", 0x100 + i)
        assert cow.shared_pages == 8
        assert cow.stats.cow_breaks == 0

    def test_child_write_gets_private_copy(self, layout):
        cow = self.make(layout)
        original = cow.read("parent", 0x102)
        new_ppn = cow.write("child", 0x102)
        assert new_ppn != original
        assert cow.read("parent", 0x102) == original
        assert cow.stats.cow_breaks == 1
        assert cow.shared_pages == 7
        cow.check_consistency()

    def test_parent_write_also_breaks(self, layout):
        cow = self.make(layout)
        child_before = cow.read("child", 0x103)
        parent_ppn = cow.write("parent", 0x103)
        assert parent_ppn != child_before
        assert cow.read("child", 0x103) == child_before

    def test_second_write_after_break_is_cheap(self, layout):
        cow = self.make(layout)
        cow.write("child", 0x104)
        faults = cow.child_mmu.stats.protection_faults
        cow.write("child", 0x104)
        assert cow.child_mmu.stats.protection_faults == faults

    def test_other_side_writable_after_break(self, layout):
        cow = self.make(layout)
        cow.write("child", 0x105)
        # The parent's page was restored to writable: no further fault.
        cow.write("parent", 0x105)
        assert cow.parent_mmu.stats.protection_faults == 0

    def test_writes_diverge_contents(self, layout):
        cow = self.make(layout)
        parent_ppn = cow.write("parent", 0x100)
        child_ppn = cow.read("child", 0x100)
        assert parent_ppn != child_ppn
        cow.check_consistency()

    def test_break_all_pages(self, layout):
        cow = self.make(layout)
        for i in range(8):
            cow.write("child", 0x100 + i)
        assert cow.shared_pages == 0
        assert cow.stats.frames_copied == 8
        cow.check_consistency()

    def test_protection_fault_outside_share_propagates(self, layout):
        cow = self.make(layout)
        cow.child.map_page(0x500, attrs=ATTR_READ)  # private read-only
        with pytest.raises(PageFaultError):
            cow.write("child", 0x500)
