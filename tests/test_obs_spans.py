"""Span recording, Chrome trace export/load, and nesting validation."""

import json
import os

import pytest

from repro.obs.spans import (
    SpanRecord,
    SpanRecorder,
    active_recorder,
    export_chrome_trace,
    install_recorder,
    load_chrome_trace,
    record_span,
    to_chrome_events,
    uninstall_recorder,
    validate_nesting,
)


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    uninstall_recorder()
    yield
    uninstall_recorder()


def _span(name, start, duration, pid=1, tid=1, depth=0):
    return SpanRecord(
        name=name, category="runner", start_us=start, duration_us=duration,
        pid=pid, tid=tid, depth=depth,
    )


class TestSpanRecorder:
    def test_begin_end_nesting_depths(self):
        recorder = SpanRecorder()
        assert recorder.begin("run") == 0
        assert recorder.begin("phase:prewarm", category="phase") == 1
        inner = recorder.end()
        outer = recorder.end()
        assert inner.name == "phase:prewarm" and inner.depth == 1
        assert outer.name == "run" and outer.depth == 0
        assert inner.start_us >= outer.start_us
        assert inner.end_us <= outer.end_us + 1  # clock granularity slack
        assert recorder.open_spans == 0
        assert validate_nesting(recorder.spans) == []

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            SpanRecorder().end()

    def test_span_context_manager_closes_on_error(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("task:x", category="experiment"):
                raise ValueError("boom")
        assert recorder.open_spans == 0
        assert [s.name for s in recorder.spans] == ["task:x"]

    def test_drain_and_extend(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            pass
        drained = recorder.drain()
        assert [s.name for s in drained] == ["a"]
        assert recorder.spans == []
        recorder.extend(drained)
        assert [s.name for s in recorder.spans] == ["a"]

    def test_record_span_is_noop_without_recorder(self):
        assert active_recorder() is None
        with record_span("stage:miss_stream") as recorder:
            assert recorder is None

    def test_record_span_uses_installed_recorder(self):
        recorder = install_recorder(SpanRecorder())
        with record_span("stage:miss_stream", category="stage", tlb="single"):
            pass
        uninstall_recorder(recorder)
        assert [s.name for s in recorder.spans] == ["stage:miss_stream"]
        assert recorder.spans[0].args == {"tlb": "single"}
        # Uninstalling a specific recorder only removes that recorder.
        other = install_recorder(SpanRecorder())
        uninstall_recorder(recorder)
        assert active_recorder() is other


class TestChromeTrace:
    def test_round_trips_through_trace_file(self, tmp_path):
        spans = [
            _span("run", 100, 900, pid=10),
            _span("task:fig11d", 200, 300, pid=10, depth=1),
            _span("task:table1", 150, 400, pid=77),
        ]
        path = export_chrome_trace(spans, tmp_path / "trace.json",
                                   parent_pid=10)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in metadata}
        assert names[10] == "repro runner"
        assert names[77] == "repro worker 77"
        loaded = load_chrome_trace(path)
        assert {(s.name, s.start_us, s.duration_us) for s in loaded} == {
            ("run", 100, 900), ("task:fig11d", 200, 300),
            ("task:table1", 150, 400),
        }
        # Depth is reconstructed from containment per track.
        depths = {s.name: s.depth for s in loaded}
        assert depths == {"run": 0, "task:fig11d": 1, "task:table1": 0}

    def test_args_are_stringified_in_events(self):
        span = SpanRecord(
            name="run", category="run", start_us=0, duration_us=1,
            pid=1, tid=1, depth=0, args={"jobs": 4},
        )
        event = span.to_chrome_event()
        assert event["ph"] == "X"
        assert event["args"] == {"jobs": "4"}
        assert json.loads(json.dumps(to_chrome_events([span]))) is not None

    def test_record_round_trips_as_dict(self):
        span = SpanRecord(
            name="phase:prewarm", category="phase", start_us=5,
            duration_us=7, pid=2, tid=3, depth=1, args={"k": "v"},
        )
        assert SpanRecord.from_dict(span.as_dict()) == span


class TestValidateNesting:
    def test_accepts_proper_hierarchy_and_siblings(self):
        spans = [
            _span("run", 0, 100),
            _span("a", 10, 20, depth=1),
            _span("b", 40, 20, depth=1),  # sibling after a closed
            _span("other-track", 0, 1000, pid=2),
        ]
        assert validate_nesting(spans) == []

    def test_flags_partial_overlap(self):
        spans = [
            _span("a", 0, 50),
            _span("b", 25, 50),  # overlaps a's tail without nesting
        ]
        problems = validate_nesting(spans)
        assert len(problems) == 1
        assert "overflows" in problems[0]

    def test_real_recorder_output_validates(self):
        recorder = SpanRecorder()
        with recorder.span("run"):
            for name in ("phase:prewarm", "phase:experiments"):
                with recorder.span(name, category="phase"):
                    with recorder.span("task:x", category="experiment"):
                        pass
        assert validate_nesting(recorder.spans) == []
        assert all(s.pid == os.getpid() for s in recorder.spans)
