"""Chaos suite: the resilience invariant under seeded fault plans.

The invariant (ISSUE 4): under ANY seeded fault plan, a run either
produces output **byte-identical** to the fault-free paper-order run or
terminates with an **explicit per-experiment failure record** — never
silently wrong, never hung.

Three layers:

- a ≥50-seed serial sweep over every injectable-in-process fault
  (I/O errors at the runner and cache sites, artefact bit rot);
- a parallel sweep adding the process-level faults only a multi-process
  scheduler can survive (worker crashes, hung workers);
- a kill-and-resume smoke: SIGKILL the runner mid-run, ``--resume``,
  and require the final output to equal the uninterrupted run's without
  re-running completed experiments.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.resilience import FaultPlan, RetryPolicy, RunJournal
from repro.resilience.faults import PROCESS_ACTIONS

TRACE_LENGTH = 2_000
WORKLOADS = ("mp3d",)
EXPERIMENTS = ("table1", "fig9")

#: Sites the serial sweep draws from: everything that can fault without
#: killing the (single) process.  The replica-divergence and ring-
#: overflow behaviour hooks are exercised by their own differential
#: tests (`tests/test_resilience_faults.py`) — they model *detected*
#: corruption, not output-preserving recovery.
SERIAL_SITES = (
    "runner.prewarm",
    "runner.experiment",
    "cache.store_stream",
    "cache.load_stream",
    "cache.artifact_stored",
)

#: Seeded plans for the serial sweep — the acceptance floor is 50.
SERIAL_SEEDS = tuple(range(50))

#: Parallel sweep: worker crashes and hangs included, ``sigint``
#: excluded (an interrupt *stops* a run by design; the completion
#: invariant below is about faults a run must survive).
PARALLEL_SITES = ("runner.prewarm", "runner.experiment")
PARALLEL_SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def chaos_env(tmp_path_factory):
    """A shared cache directory plus the fault-free baseline renders."""
    cache_dir = str(tmp_path_factory.mktemp("chaos-cache"))
    results, _ = runner.run_all_with_metrics(
        TRACE_LENGTH,
        jobs=1,
        cache_dir=cache_dir,
        workloads=WORKLOADS,
        only=list(EXPERIMENTS),
    )
    baseline = {
        key: results[key].render(precision=3) for key in EXPERIMENTS
    }
    return cache_dir, baseline


def _assert_invariant(results, metrics, baseline):
    """Every experiment either byte-matches the baseline or failed loudly."""
    failed_keys = {record.key for record in metrics.failures}
    for key in EXPERIMENTS:
        if key in results:
            assert results[key].render(precision=3) == baseline[key], (
                f"{key}: output diverged from the fault-free run"
            )
        else:
            assert key in failed_keys, (
                f"{key}: missing from the results with no failure record"
            )
    for record in metrics.failures:
        assert record.error_type and record.attempts >= 1


@pytest.mark.parametrize("seed", SERIAL_SEEDS)
def test_serial_chaos_sweep(seed, chaos_env):
    cache_dir, baseline = chaos_env
    plan = FaultPlan.random(
        seed,
        sites=SERIAL_SITES,
        max_rules=3,
        max_attempt=2,
        exclude_actions=PROCESS_ACTIONS,
    )
    cfg = runner.ResilienceConfig(
        retry=RetryPolicy(max_retries=2, base_delay=0.0),
        keep_going=True,
        fault_plan=plan,
    )
    results, metrics = runner.run_all_with_metrics(
        TRACE_LENGTH,
        jobs=1,
        cache_dir=cache_dir,
        workloads=WORKLOADS,
        only=list(EXPERIMENTS),
        resilience=cfg,
    )
    _assert_invariant(results, metrics, baseline)


@pytest.mark.slow
@pytest.mark.parametrize("seed", PARALLEL_SEEDS)
def test_parallel_chaos_sweep(seed, chaos_env):
    cache_dir, baseline = chaos_env
    plan = FaultPlan.random(
        seed,
        sites=PARALLEL_SITES,
        max_rules=2,
        hang_seconds=30.0,  # far beyond the timeout: must be preempted
        max_attempt=2,
        exclude_actions=("sigint",),
    )
    cfg = runner.ResilienceConfig(
        retry=RetryPolicy(max_retries=3, base_delay=0.0),
        task_timeout=3.0,
        keep_going=True,
        fault_plan=plan,
    )
    started = time.monotonic()
    results, metrics = runner.run_all_with_metrics(
        TRACE_LENGTH,
        jobs=2,
        cache_dir=cache_dir,
        workloads=WORKLOADS,
        only=list(EXPERIMENTS),
        resilience=cfg,
    )
    assert time.monotonic() - started < 120.0  # terminated, never hung
    _assert_invariant(results, metrics, baseline)


def _journal_entries(journal_path: Path) -> int:
    if not journal_path.exists():
        return 0
    count = 0
    for line in journal_path.read_text().splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "entry" in record:
            count += 1
    return count


@pytest.mark.slow
def test_sigkill_then_resume_reproduces_uninterrupted_output(tmp_path):
    """SIGKILL mid-run + ``--resume`` equals the uninterrupted run."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
    cache_dir = tmp_path / "cache"
    run_dir = tmp_path / "run"
    base_args = [
        sys.executable, "-m", "repro.experiments.runner",
        "--trace-length", str(TRACE_LENGTH),
        "--workloads", "mp3d",
        "--only", "table1,fig9,fig10,fig11a,fig11b",
        "--cache-dir", str(cache_dir),
    ]

    reference = subprocess.run(
        base_args, capture_output=True, text=True, env=env, cwd=repo_root,
        timeout=300,
    )
    assert reference.returncode == 0, reference.stderr
    reference_results = reference.stdout.split("Run metrics")[0]

    # Start the journaled run and SIGKILL it once progress is durable.
    journal_path = run_dir / "journal.jsonl"
    proc = subprocess.Popen(
        base_args + ["--run-dir", str(run_dir)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=env, cwd=repo_root,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _journal_entries(journal_path) >= 1 or proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=60)
    completed_before = _journal_entries(journal_path)
    assert completed_before >= 1, "no progress was journaled before the kill"

    resumed = subprocess.run(
        base_args + ["--resume", str(run_dir)],
        capture_output=True, text=True, env=env, cwd=repo_root,
        timeout=300,
    )
    assert resumed.returncode == 0, resumed.stderr
    # Byte-identical results, without re-running completed experiments.
    assert resumed.stdout.split("Run metrics")[0] == reference_results
    assert f"{completed_before} resumed" in resumed.stdout
    assert RunJournal(run_dir).completed_count() == 5
