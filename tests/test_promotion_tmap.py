"""Page-size policy decisions and the translation map built from them."""

import pytest

from repro.addr.layout import AddressLayout
from repro.addr.space import AddressSpace
from repro.core.clustered import ClusteredPageTable
from repro.os.promotion import (
    BASE_ONLY_POLICY,
    BlockFormat,
    DynamicPageSizePolicy,
)
from repro.os.translation_map import TranslationMap
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.linear import LinearPageTable
from repro.pagetables.pte import PTEKind


def placed_block(space, vpbn, mask, base_ppn, attrs=0x7):
    base = vpbn * space.layout.subblock_factor
    for boff in range(space.layout.subblock_factor):
        if (mask >> boff) & 1:
            space.map(base + boff, base_ppn + boff, attrs)


class TestPolicyDecisions:
    def test_full_placed_block_becomes_superpage(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0xFFFF, 0x400)
        decision = DynamicPageSizePolicy().decide_block(space, 0x10)
        assert decision.format is BlockFormat.SUPERPAGE
        assert decision.base_ppn == 0x400

    def test_partial_placed_block_becomes_subblock(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0b1011, 0x400)
        decision = DynamicPageSizePolicy().decide_block(space, 0x10)
        assert decision.format is BlockFormat.PARTIAL_SUBBLOCK
        assert decision.valid_mask == 0b1011

    def test_unplaced_block_stays_base(self, layout):
        space = AddressSpace(layout)
        space.map(0x100, 0x400)
        space.map(0x101, 0x999)  # wrong slot
        decision = DynamicPageSizePolicy().decide_block(space, 0x10)
        assert decision.format is BlockFormat.BASE

    def test_mixed_attrs_stay_base(self, layout):
        space = AddressSpace(layout)
        space.map(0x100, 0x400, attrs=0x1)
        space.map(0x101, 0x401, attrs=0x7)
        decision = DynamicPageSizePolicy().decide_block(space, 0x10)
        assert decision.format is BlockFormat.BASE

    def test_unaligned_physical_base_stays_base(self, layout):
        space = AddressSpace(layout)
        # Placed relative to each other but not to an aligned block.
        space.map(0x100, 0x408)
        space.map(0x101, 0x409)
        decision = DynamicPageSizePolicy().decide_block(space, 0x10)
        assert decision.format is BlockFormat.BASE

    def test_empty_block_is_none(self, layout):
        assert DynamicPageSizePolicy().decide_block(AddressSpace(layout), 5) is None

    def test_superpages_disabled(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0xFFFF, 0x400)
        policy = DynamicPageSizePolicy(enable_superpages=False)
        assert policy.decide_block(space, 0x10).format is BlockFormat.PARTIAL_SUBBLOCK

    def test_base_only_policy(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0xFFFF, 0x400)
        assert BASE_ONLY_POLICY.decide_block(space, 0x10).format is BlockFormat.BASE

    def test_threshold_gates_subblocking(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0b11, 0x400)
        policy = DynamicPageSizePolicy(promote_threshold=4)
        assert policy.decide_block(space, 0x10).format is BlockFormat.BASE

    def test_decide_covers_all_blocks(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0xFFFF, 0x400)
        placed_block(space, 0x20, 0b1, 0x600)
        decisions = DynamicPageSizePolicy().decide(space)
        assert set(decisions) == {0x10, 0x20}

    def test_format_fractions(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0xFFFF, 0x400)
        placed_block(space, 0x20, 0b1, 0x600)
        decisions = DynamicPageSizePolicy().decide(space)
        fractions = DynamicPageSizePolicy.format_fractions(decisions)
        assert fractions[BlockFormat.SUPERPAGE] == pytest.approx(0.5)
        assert fractions[BlockFormat.PARTIAL_SUBBLOCK] == pytest.approx(0.5)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DynamicPageSizePolicy(promote_threshold=0)


class TestTranslationMap:
    def make_space(self, layout):
        space = AddressSpace(layout)
        placed_block(space, 0x10, 0xFFFF, 0x400)   # superpage
        placed_block(space, 0x20, 0b101, 0x600)    # partial subblock
        space.map(0x300, 0x999)                    # unplaced base page
        space.map(0x301, 0x111)
        return space

    def test_query_each_kind(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        assert tmap.query(0x105).kind is PTEKind.SUPERPAGE
        assert tmap.query(0x200).kind is PTEKind.PARTIAL_SUBBLOCK
        assert tmap.query(0x300).kind is PTEKind.BASE
        assert tmap.query(0x9999) is None

    def test_query_respects_masks(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        assert tmap.query(0x201) is None  # invalid bit of the psb block

    def test_query_resolves_ppns(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        assert tmap.query(0x105).ppn_for(0x105) == 0x405
        assert tmap.query(0x202).ppn_for(0x202) == 0x602

    def test_counts_and_fss(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        assert tmap.counts() == {"base": 2, "superpage": 1,
                                 "partial_subblock": 1}
        assert tmap.wide_fraction() == pytest.approx(2 / 3)

    def test_block_mappings(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        mappings = tmap.block_mappings(0x20)
        assert mappings[0].ppn == 0x600
        assert mappings[1] is None
        assert mappings[2].ppn == 0x602

    def test_mapped_vpns_complete(self, layout):
        space = self.make_space(layout)
        tmap = TranslationMap.from_space(space, DynamicPageSizePolicy())
        assert sorted(tmap.mapped_vpns()) == sorted(space)

    def test_populate_native(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        table = ClusteredPageTable(layout)
        tmap.populate(table)
        assert table.lookup(0x105).kind is PTEKind.SUPERPAGE
        assert table.lookup(0x202).kind is PTEKind.PARTIAL_SUBBLOCK
        assert table.lookup(0x300).kind is PTEKind.BASE

    def test_populate_base_only_decomposes(self, layout):
        space = self.make_space(layout)
        tmap = TranslationMap.from_space(space, DynamicPageSizePolicy())
        table = HashedPageTable(layout)
        tmap.populate(table, base_pages_only=True)
        assert table.node_count == len(space)
        assert table.lookup(0x105).kind is PTEKind.BASE

    def test_populate_replicating_table(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        table = LinearPageTable(layout)
        tmap.populate(table)
        assert table.lookup(0x105).kind is PTEKind.SUPERPAGE

    def test_no_policy_means_base_pages(self, layout):
        space = self.make_space(layout)
        tmap = TranslationMap.from_space(space)
        assert len(tmap) == len(space)
        assert tmap.counts()["superpage"] == 0

    def test_len_counts_ptes(self, layout):
        tmap = TranslationMap.from_space(
            self.make_space(layout), DynamicPageSizePolicy()
        )
        assert len(tmap) == 4  # 1 superpage + 1 psb + 2 base

    def test_agreement_with_space(self, layout):
        # Every mapped page resolves to the same PPN the space holds.
        space = self.make_space(layout)
        tmap = TranslationMap.from_space(space, DynamicPageSizePolicy())
        for vpn, mapping in space.items():
            pte = tmap.query(vpn)
            assert pte is not None and pte.ppn_for(vpn) == mapping.ppn
