"""Crash-safe write primitives (`repro.util.atomic_io`)."""

import os

import pytest

from repro.util.atomic_io import (
    append_line_fsync,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    fsync_directory,
)


class TestAtomicWriter:
    def test_writes_land_under_the_final_name(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_writer(target) as handle:
            handle.write("hello\n")
        assert target.read_text() == "hello\n"

    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        with atomic_writer(target) as handle:
            handle.write("x")
        assert target.read_text() == "x"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_writer(target) as handle:
            handle.write("x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_error_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("partial garbage")
                raise RuntimeError("simulated crash mid-write")
        assert target.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_binary_mode(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_writer(target, "wb") as handle:
            handle.write(b"\x00\xff")
        assert target.read_bytes() == b"\x00\xff"

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_writer(tmp_path / "x", "r"):
                pass

    def test_overwrites_existing_file_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_writer(target) as handle:
            handle.write("new")
        assert target.read_text() == "new"


class TestConvenienceWrappers:
    def test_atomic_write_text(self, tmp_path):
        path = atomic_write_text(tmp_path / "t.txt", "content")
        assert path.read_text() == "content"

    def test_atomic_write_bytes(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "t.bin", b"content")
        assert path.read_bytes() == b"content"


class TestAppendLineFsync:
    def test_appends_one_line_per_call(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_line_fsync(path, '{"a": 1}')
        append_line_fsync(path, '{"b": 2}')
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "run" / "journal.jsonl"
        append_line_fsync(path, "line")
        assert path.read_text() == "line\n"

    def test_rejects_embedded_newlines(self, tmp_path):
        with pytest.raises(ValueError):
            append_line_fsync(tmp_path / "j", "two\nlines")


def test_fsync_directory_tolerates_missing_path(tmp_path):
    fsync_directory(tmp_path / "does-not-exist")  # must not raise
    fsync_directory(tmp_path)
