"""TLB models: LRU, eviction, range tags, block/subblock miss accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.mmu.subblock_tlb import CompleteSubblockTLB, PartialSubblockTLB
from repro.mmu.superpage_tlb import SuperpageTLB
from repro.mmu.tlb import FullyAssociativeTLB, SetAssociativeTLB, TLBEntry
from repro.pagetables.pte import PTEKind


def base_entry(vpn, ppn=None, attrs=0):
    return TLBEntry(
        base_vpn=vpn, npages=1, base_ppn=ppn if ppn is not None else vpn + 0x100,
        attrs=attrs, valid_mask=1, kind=PTEKind.BASE,
    )


def superpage_entry(base_vpn, npages, base_ppn):
    return TLBEntry(
        base_vpn=base_vpn, npages=npages, base_ppn=base_ppn, attrs=0,
        valid_mask=(1 << npages) - 1, kind=PTEKind.SUPERPAGE,
    )


def psb_entry(base_vpn, mask, base_ppn):
    return TLBEntry(
        base_vpn=base_vpn, npages=16, base_ppn=base_ppn, attrs=0,
        valid_mask=mask, kind=PTEKind.PARTIAL_SUBBLOCK,
    )


def csb_entry(base_vpn, ppns):
    mask = 0
    for i, ppn in enumerate(ppns):
        if ppn is not None:
            mask |= 1 << i
    return TLBEntry(
        base_vpn=base_vpn, npages=len(ppns), base_ppn=0, attrs=0,
        valid_mask=mask, kind=PTEKind.BASE, ppns=tuple(ppns),
    )


class TestTLBEntry:
    def test_covers_and_translates(self):
        entry = superpage_entry(0x100, 16, 0x400)
        assert entry.covers(0x100) and entry.covers(0x10F)
        assert not entry.covers(0x110)
        assert entry.translates(0x105)
        assert entry.ppn_for(0x105) == 0x405

    def test_mask_gates_translation(self):
        entry = psb_entry(0x100, 0b10, 0x400)
        assert not entry.translates(0x100)
        assert entry.translates(0x101)

    def test_ppns_array_translation(self):
        entry = csb_entry(0x100, [None, 0x99] + [None] * 14)
        assert entry.translates(0x101)
        assert not entry.translates(0x100)
        assert entry.ppn_for(0x101) == 0x99


class TestFullyAssociative:
    def test_miss_then_hit(self):
        tlb = FullyAssociativeTLB(4)
        assert tlb.lookup(5) is None
        tlb.fill(base_entry(5))
        assert tlb.lookup(5).ppn_for(5) == 0x105
        assert tlb.stats.hits == 1 and tlb.stats.misses == 1

    def test_lru_eviction_order(self):
        tlb = FullyAssociativeTLB(2)
        tlb.fill(base_entry(1))
        tlb.fill(base_entry(2))
        tlb.lookup(1)            # 2 becomes LRU
        tlb.fill(base_entry(3))  # evicts 2
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) is not None
        assert tlb.stats.evictions == 1

    def test_refill_same_tag_replaces(self):
        tlb = FullyAssociativeTLB(2)
        tlb.fill(base_entry(1, ppn=0x10))
        tlb.fill(base_entry(1, ppn=0x20))
        assert len(tlb) == 1
        assert tlb.lookup(1).ppn_for(1) == 0x20

    def test_rejects_multi_page_entries(self):
        tlb = FullyAssociativeTLB(2)
        with pytest.raises(ConfigurationError):
            tlb.fill(superpage_entry(0x100, 16, 0x400))

    def test_flush(self):
        tlb = FullyAssociativeTLB(4)
        tlb.fill(base_entry(1))
        tlb.flush()
        assert len(tlb) == 0 and tlb.stats.flushes == 1

    def test_invalidate(self):
        tlb = FullyAssociativeTLB(4)
        tlb.fill(base_entry(1))
        assert tlb.invalidate(1) == 1
        assert tlb.lookup(1) is None

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            FullyAssociativeTLB(0)

    def test_miss_ratio(self):
        tlb = FullyAssociativeTLB(4)
        tlb.lookup(1)
        tlb.fill(base_entry(1))
        tlb.lookup(1)
        assert tlb.stats.miss_ratio == pytest.approx(0.5)


class TestSetAssociative:
    def test_conflict_within_set(self):
        tlb = SetAssociativeTLB(num_sets=2, ways=1)
        tlb.fill(base_entry(0))
        tlb.fill(base_entry(2))  # same set (even), evicts 0
        assert tlb.lookup(0) is None
        assert tlb.lookup(2) is not None

    def test_different_sets_coexist(self):
        tlb = SetAssociativeTLB(num_sets=2, ways=1)
        tlb.fill(base_entry(0))
        tlb.fill(base_entry(1))
        assert tlb.lookup(0) is not None and tlb.lookup(1) is not None

    def test_per_set_lru(self):
        tlb = SetAssociativeTLB(num_sets=1, ways=2)
        tlb.fill(base_entry(0))
        tlb.fill(base_entry(1))
        tlb.lookup(0)
        tlb.fill(base_entry(2))
        assert tlb.lookup(1) is None and tlb.lookup(0) is not None

    def test_flush_and_len(self):
        tlb = SetAssociativeTLB(num_sets=4, ways=2)
        for i in range(6):
            tlb.fill(base_entry(i))
        assert len(tlb) == 6
        tlb.flush()
        assert len(tlb) == 0

    def test_rejects_multi_page(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeTLB(2, 2).fill(superpage_entry(0, 16, 0))


class TestSuperpageTLB:
    def test_superpage_hit_covers_range(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        tlb.fill(superpage_entry(0x100, 16, 0x400))
        for off in (0, 7, 15):
            assert tlb.lookup(0x100 + off).ppn_for(0x100 + off) == 0x400 + off

    def test_mixed_sizes_coexist(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        tlb.fill(superpage_entry(0x100, 16, 0x400))
        tlb.fill(base_entry(0x200))
        assert tlb.lookup(0x105) is not None
        assert tlb.lookup(0x200) is not None

    def test_rejects_unsupported_size(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        with pytest.raises(ConfigurationError):
            tlb.fill(superpage_entry(0x100, 8, 0x400))

    def test_rejects_unaligned_superpage(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        with pytest.raises(ConfigurationError):
            tlb.fill(
                TLBEntry(base_vpn=0x101, npages=16, base_ppn=0, attrs=0,
                         valid_mask=0xFFFF, kind=PTEKind.SUPERPAGE)
            )

    def test_accepts_matrix(self):
        tlb = SuperpageTLB(4, page_sizes=(1, 16))
        assert tlb.accepts(PTEKind.SUPERPAGE, 16)
        assert not tlb.accepts(PTEKind.SUPERPAGE, 8)
        assert not tlb.accepts(PTEKind.PARTIAL_SUBBLOCK, 16)

    def test_rejects_bad_page_size_config(self):
        with pytest.raises(ConfigurationError):
            SuperpageTLB(4, page_sizes=(3,))


class TestPartialSubblockTLB:
    def test_block_entry_hits_valid_pages_only(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        tlb.fill(psb_entry(0x100, 0b101, 0x400))
        assert tlb.lookup(0x100).ppn_for(0x100) == 0x400
        assert tlb.lookup(0x102).ppn_for(0x102) == 0x402
        assert tlb.lookup(0x101) is None

    def test_unplaced_page_uses_own_entry(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        tlb.fill(base_entry(0x105, ppn=0x77))
        assert tlb.lookup(0x105).ppn_for(0x105) == 0x77

    def test_block_and_page_entries_coexist(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        tlb.fill(psb_entry(0x100, 0b1, 0x400))
        tlb.fill(base_entry(0x103, ppn=0x88))
        assert tlb.lookup(0x100) is not None
        assert tlb.lookup(0x103).ppn_for(0x103) == 0x88

    def test_subblock_miss_classification(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        tlb.fill(psb_entry(0x100, 0b1, 0x400))
        tlb.lookup(0x101)  # tag present, bit clear
        tlb.lookup(0x200)  # no tag
        assert tlb.stats.subblock_misses == 1
        assert tlb.stats.block_misses == 1

    def test_rejects_wrong_block_size(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        with pytest.raises(ConfigurationError):
            tlb.fill(superpage_entry(0x100, 8, 0x400))

    def test_rejects_ppn_array(self):
        tlb = PartialSubblockTLB(4, subblock_factor=16)
        with pytest.raises(ConfigurationError):
            tlb.fill(csb_entry(0x100, [1] * 16))


class TestCompleteSubblockTLB:
    def test_per_page_ppns(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        ppns = [0x900 + i if i % 2 else None for i in range(16)]
        tlb.fill(csb_entry(0x100, ppns))
        assert tlb.lookup(0x101).ppn_for(0x101) == 0x901
        assert tlb.lookup(0x100) is None  # subblock miss

    def test_merge_fill_adds_page(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        tlb.fill(csb_entry(0x100, [None] * 16))
        assert tlb.merge_fill(0x105, 0x55, 0)
        assert tlb.lookup(0x105).ppn_for(0x105) == 0x55

    def test_merge_fill_without_tag_fails(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        assert not tlb.merge_fill(0x105, 0x55, 0)

    def test_block_vs_subblock_misses(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        tlb.lookup(0x100)           # block miss
        tlb.fill(csb_entry(0x100, [0x1] + [None] * 15))
        tlb.lookup(0x101)           # subblock miss
        assert tlb.stats.block_misses == 1
        assert tlb.stats.subblock_misses == 1

    def test_requires_ppn_array(self):
        tlb = CompleteSubblockTLB(4, subblock_factor=16)
        with pytest.raises(ConfigurationError):
            tlb.fill(psb_entry(0x100, 0b1, 0x400))

    def test_current_entry_does_not_touch_lru(self):
        tlb = CompleteSubblockTLB(2, subblock_factor=16)
        tlb.fill(csb_entry(0x100, [0x1] * 16))
        tlb.fill(csb_entry(0x200, [0x2] * 16))
        tlb.current_entry(0x100)       # no LRU refresh
        tlb.fill(csb_entry(0x300, [0x3] * 16))
        assert tlb.current_entry(0x100) is None  # 0x100 was LRU, evicted

    def test_rejects_bad_subblock_factor(self):
        with pytest.raises(ConfigurationError):
            CompleteSubblockTLB(4, subblock_factor=3)
