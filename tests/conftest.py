"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.addr.layout import AddressLayout
from repro.addr.space import AddressSpace


@pytest.fixture
def layout() -> AddressLayout:
    """The paper's base configuration (4 KB pages, subblock factor 16)."""
    return AddressLayout()


@pytest.fixture
def small_layout() -> AddressLayout:
    """Subblock factor 4, handy for exhaustive block-level assertions."""
    return AddressLayout(subblock_factor=4)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for tests that need randomness."""
    return random.Random(0xC0FFEE)


def make_space(layout: AddressLayout, blocks: int = 8, pages_per_block: int = 16,
               base_vpn: int = 0x10000, base_ppn: int = 0x4000) -> AddressSpace:
    """A dense snapshot: ``blocks`` consecutive page blocks, fully mapped.

    Frames are allocated properly placed so promotion-related tests can
    rely on placement.
    """
    space = AddressSpace(layout)
    s = layout.subblock_factor
    for block in range(blocks):
        for offset in range(min(pages_per_block, s)):
            vpn = base_vpn + block * s + offset
            ppn = base_ppn + block * s + offset
            space.map(vpn, ppn)
    return space


@pytest.fixture
def dense_space(layout) -> AddressSpace:
    """Eight fully-populated, properly-placed page blocks."""
    return make_space(layout)


@pytest.fixture
def sparse_space(layout) -> AddressSpace:
    """Isolated single pages scattered across the 64-bit space."""
    space = AddressSpace(layout)
    vpn = 0x1000
    for i in range(40):
        space.map(vpn, 0x900 + i)
        vpn = (vpn * 2654435761 + 12345) % (layout.max_vpn - 1)
    return space
